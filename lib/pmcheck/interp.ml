(** The PMIR interpreter and durability-bug finder.

    Plays the role pmemcheck plays for the original system: it executes the
    program under test, records a PM-operation trace (stores, flushes,
    fences, calls — each with its call stack), and reports every store that
    is not durable when a crash point or program exit is reached.

    Programs are first {e prepared}: register names become array slots,
    block labels become code indices, callees become function indices — a
    one-time cost that makes the YCSB benchmark workloads (millions of
    interpreted instructions) tractable. *)

open Hippo_pmir

exception Aborted
exception Out_of_fuel
exception Stopped_at_crash

type pval = PReg of int | PImm of int

type intrinsic =
  | Ipm_alloc
  | Ipm_base
  | Ipm_size
  | Imalloc
  | Ifree
  | Iemit
  | Iabort

type callee = Cfunc of int | Cintrinsic of intrinsic

(* Branchy operations carry their coverage-map indices, precomputed from
   the stable (function, block, successor) naming at preparation time so
   the hot loop never hashes a string. *)
type pop =
  | PStore of { addr : pval; value : pval; size : int; nt : bool }
  | PLoad of { dst : int; addr : pval; size : int }
  | PFlush of { kind : Instr.flush_kind; addr : pval }
  | PFence of { kind : Instr.fence_kind }
  | PBinop of { dst : int; op : Instr.binop; lhs : pval; rhs : pval }
  | PMov of { dst : int; src : pval }
  | PGep of { dst : int; base : pval; offset : pval }
  | PAlloca of { dst : int; size : int }
  | PCall of { dst : int; callee : callee; args : pval array; edge : int }
      (** [dst = -1] when the result is discarded *)
  | PJmp of { target : int; edge : int }
  | PCondbr of {
      cond : pval;
      if_true : int;
      if_false : int;
      edge_true : int;
      edge_false : int;
    }
  | PRet of pval option
  | PCrash of { edge : int }

type pinstr = { iid : Iid.t; loc : Loc.t; op : pop }

type pfunc = { fname : string; nregs : int; pslots : int array; code : pinstr array }

type config = {
  trace : bool;  (** record the PM operation trace *)
  fuel : int;  (** maximum interpreted instructions *)
  cost : Cost.t option;  (** account simulated latency *)
  stop_at_crash : int option;  (** halt at the n-th crash point (1-based) *)
  track_images : bool;  (** fingerprint both PM images incrementally *)
  coverage : Coverage.t option;
      (** mark executed control edges in this map (the fuzzer's signal);
          [None] (the default) skips all marking *)
  vol_size : int;
  stack_size : int;
  global_size : int;
  pm_size : int;
}

let default_config =
  {
    trace = true;
    fuel = 200_000_000;
    cost = None;
    stop_at_crash = None;
    track_images = false;
    coverage = None;
    vol_size = 1 lsl 24;
    stack_size = 1 lsl 22;
    global_size = 1 lsl 20;
    pm_size = 1 lsl 24;
  }

(* Preparation ------------------------------------------------------------ *)

let intrinsic_of_name = function
  | "pm_alloc" -> Some Ipm_alloc
  | "pm_base" -> Some Ipm_base
  | "pm_size" -> Some Ipm_size
  | "malloc" -> Some Imalloc
  | "free" -> Some Ifree
  | "emit" -> Some Iemit
  | "abort" -> Some Iabort
  | _ -> None

let prepare_func ~fidx ~global_addr (f : Func.t) : pfunc =
  let slots = Hashtbl.create 32 in
  let next = ref 0 in
  let slot r =
    match Hashtbl.find_opt slots r with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add slots r i;
        i
  in
  let pslots = Array.of_list (List.map slot (Func.params f)) in
  let blocks = Func.blocks f in
  (* Block label -> code index of its first instruction. *)
  let starts = Hashtbl.create 16 in
  let _ =
    List.fold_left
      (fun idx (b : Func.block) ->
        Hashtbl.add starts b.label idx;
        idx + List.length b.instrs)
      0 blocks
  in
  let target l =
    match Hashtbl.find_opt starts l with
    | Some i -> i
    | None -> Mem.trap "undefined label %S in @%s" l (Func.name f)
  in
  let pv : Value.t -> pval = function
    | Value.Reg r -> PReg (slot r)
    | Value.Imm n -> PImm n
    | Value.Global g -> PImm (global_addr g)
    | Value.Null -> PImm 0
  in
  let fname = Func.name f in
  let pop ~block (i : Instr.t) : pop =
    let cov dest = Coverage.edge ~func:fname ~block ~dest in
    match Instr.op i with
    | Instr.Store { addr; value; size; nontemporal } ->
        PStore { addr = pv addr; value = pv value; size; nt = nontemporal }
    | Instr.Load { dst; addr; size } -> PLoad { dst = slot dst; addr = pv addr; size }
    | Instr.Flush { kind; addr } -> PFlush { kind; addr = pv addr }
    | Instr.Fence { kind } -> PFence { kind }
    | Instr.Binop { dst; op; lhs; rhs } ->
        PBinop { dst = slot dst; op; lhs = pv lhs; rhs = pv rhs }
    | Instr.Mov { dst; src } -> PMov { dst = slot dst; src = pv src }
    | Instr.Gep { dst; base; offset } ->
        PGep { dst = slot dst; base = pv base; offset = pv offset }
    | Instr.Alloca { dst; size } -> PAlloca { dst = slot dst; size }
    | Instr.Call { dst; callee; args } ->
        let target =
          match Hashtbl.find_opt fidx callee with
          | Some i -> Cfunc i
          | None -> (
              match intrinsic_of_name callee with
              | Some it -> Cintrinsic it
              | None -> Mem.trap "call to undefined function @%s" callee)
        in
        PCall
          {
            dst = (match dst with Some d -> slot d | None -> -1);
            callee = target;
            args = Array.of_list (List.map pv args);
            edge = cov callee;
          }
    | Instr.Br { target = l } -> PJmp { target = target l; edge = cov l }
    | Instr.Condbr { cond; if_true; if_false } ->
        PCondbr
          {
            cond = pv cond;
            if_true = target if_true;
            if_false = target if_false;
            edge_true = cov if_true;
            edge_false = cov if_false;
          }
    | Instr.Ret v -> PRet (Option.map pv v)
    | Instr.Crash -> PCrash { edge = cov "!crash" }
  in
  let code =
    List.concat_map
      (fun (b : Func.block) ->
        List.map
          (fun i ->
            { iid = Instr.iid i; loc = Instr.loc i; op = pop ~block:b.label i })
          b.instrs)
      blocks
    |> Array.of_list
  in
  { fname = Func.name f; nregs = !next; pslots; code }

(* Interpreter state ------------------------------------------------------ *)

type t = {
  prog : Program.t;
  pfuncs : pfunc array;
  fidx : (string, int) Hashtbl.t;
  mem : Mem.t;
  ps : Pstate.t;
  cfg : config;
  cov : Coverage.t option;  (** = [cfg.coverage], hoisted for the hot loop *)
  mutable seq : int;
  mutable steps : int;
  mutable trace_rev : Trace.event list;
  mutable bugs_rev : Report.bug list;
  mutable output_rev : int list;
  mutable cost_ns : float;
  mutable crashes_hit : int;
  mutable crash_hook : (unit -> unit) option;
      (** fired at every explicit crash point (the single-pass sweep's
          image-capture callback) *)
  mutable frames : Trace.stack;  (** current call stack, innermost first *)
  stats : Sitestats.t;  (** per-site pointer-class observations *)
}

let create ?pm_image (cfg : config) (prog : Program.t) : t =
  let funcs = Program.funcs prog in
  let fidx = Hashtbl.create 64 in
  List.iteri (fun i f -> Hashtbl.add fidx (Func.name f) i) funcs;
  let mem =
    Mem.create ~vol_size:cfg.vol_size ~stack_size:cfg.stack_size
      ~global_size:cfg.global_size ~pm_size:cfg.pm_size ?pm_image
      ~track_images:cfg.track_images (Program.globals prog)
  in
  let global_addr = Mem.global_addr mem in
  let pfuncs =
    Array.of_list (List.map (prepare_func ~fidx ~global_addr) funcs)
  in
  {
    prog;
    pfuncs;
    fidx;
    mem;
    ps = Pstate.create ();
    cfg;
    cov = cfg.coverage;
    seq = 0;
    steps = 0;
    trace_rev = [];
    bugs_rev = [];
    output_rev = [];
    cost_ns = 0.0;
    crashes_hit = 0;
    crash_hook = None;
    frames = [];
    stats = Sitestats.create ();
  }

let mem t = t.mem
let set_crash_hook t f = t.crash_hook <- Some f

(** Explicit crash points passed so far — maintained whether or not the
    trace is recorded, so callers can count crash points without
    materializing a trace. *)
let crash_points_hit t = t.crashes_hit

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let push_event t ev = if t.cfg.trace then t.trace_rev <- ev :: t.trace_rev

let classify_arg v : Trace.arg_class =
  if Layout.is_pm v then Trace.Pm_ptr
  else if Layout.is_volatile_ptr v then Trace.Vol_ptr
  else Trace.Not_ptr

let record_crash_point t ~iid ~loc =
  t.crashes_hit <- t.crashes_hit + 1;
  let crash : Report.crash_info =
    { crash_iid = iid; crash_loc = loc; crash_stack = t.frames }
  in
  push_event t
    (Trace.Crash_point { iid; loc; stack = t.frames; seq = next_seq t });
  let bugs = Pstate.unpersisted_bugs t.ps ~crash in
  t.bugs_rev <- List.rev_append bugs t.bugs_rev;
  (match t.crash_hook with Some f -> f () | None -> ());
  match t.cfg.stop_at_crash with
  | Some n when t.crashes_hit >= n -> raise Stopped_at_crash
  | _ -> ()

(* Execution -------------------------------------------------------------- *)

let rec exec_call t (pf : pfunc) (args : int array) : int =
  if Array.length args <> Array.length pf.pslots then
    Mem.trap "@%s called with %d arguments (expects %d)" pf.fname
      (Array.length args) (Array.length pf.pslots);
  let regs = Array.make pf.nregs 0 in
  Array.iteri (fun i slot -> regs.(slot) <- args.(i)) pf.pslots;
  let stack_mark = Mem.stack_mark t.mem in
  let cost = t.cfg.cost in
  let ev (v : pval) = match v with PReg i -> regs.(i) | PImm n -> n in
  let charge ns = t.cost_ns <- t.cost_ns +. ns in
  let code = pf.code in
  let ncode = Array.length code in
  let pc = ref 0 in
  let result = ref 0 in
  let running = ref true in
  while !running do
    if !pc >= ncode then
      Mem.trap "fell off the end of @%s (missing ret)" pf.fname;
    t.steps <- t.steps + 1;
    if t.steps > t.cfg.fuel then raise Out_of_fuel;
    let i = Array.unsafe_get code !pc in
    incr pc;
    match i.op with
    | PBinop { dst; op; lhs; rhs } ->
        let a = ev lhs and b = ev rhs in
        let r =
          match op with
          | Instr.Add -> a + b
          | Instr.Sub -> a - b
          | Instr.Mul -> a * b
          | Instr.Div -> if b = 0 then Mem.trap "division by zero" else a / b
          | Instr.Rem -> if b = 0 then Mem.trap "remainder by zero" else a mod b
          | Instr.And -> a land b
          | Instr.Or -> a lor b
          | Instr.Xor -> a lxor b
          | Instr.Shl -> a lsl (b land 62)
          | Instr.Lshr -> a lsr (b land 62)
          | Instr.Eq -> if a = b then 1 else 0
          | Instr.Ne -> if a <> b then 1 else 0
          | Instr.Lt -> if a < b then 1 else 0
          | Instr.Le -> if a <= b then 1 else 0
          | Instr.Gt -> if a > b then 1 else 0
          | Instr.Ge -> if a >= b then 1 else 0
        in
        regs.(dst) <- r;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PMov { dst; src } ->
        regs.(dst) <- ev src;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PGep { dst; base; offset } ->
        regs.(dst) <- ev base + ev offset;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PLoad { dst; addr; size } ->
        let a = ev addr in
        regs.(dst) <- Mem.load t.mem ~addr:a ~size;
        (match cost with
        | Some c -> charge (if Layout.is_pm a then c.load_pm_ns else c.load_dram_ns)
        | None -> ())
    | PStore { addr; value; size; nt } ->
        let a = ev addr and v = ev value in
        Mem.store t.mem ~addr:a ~size v;
        if t.cfg.trace then
          Sitestats.observe t.stats ~site:i.iid ~arg:(-1) (classify_arg a);
        if Layout.is_pm a then begin
          let seq = next_seq t in
          (if nt then
             Pstate.store_nt t.ps t.mem ~iid:i.iid ~loc:i.loc ~stack:t.frames
               ~addr:a ~size ~seq
           else
             ignore
               (Pstate.store t.ps ~iid:i.iid ~loc:i.loc ~stack:t.frames ~addr:a
                  ~size ~seq));
          push_event t
            (Trace.Store
               {
                 iid = i.iid;
                 loc = i.loc;
                 stack = t.frames;
                 addr = a;
                 size;
                 nontemporal = nt;
                 seq;
               })
        end;
        (match cost with
        | Some c -> charge (if Layout.is_pm a then c.store_pm_ns else c.store_dram_ns)
        | None -> ())
    | PFlush { kind; addr } ->
        let a = ev addr in
        let moved = Pstate.flush t.ps t.mem ~iid:i.iid ~kind ~addr:a in
        if Layout.is_pm a then begin
          let seq = next_seq t in
          push_event t
            (Trace.Flush
               {
                 iid = i.iid;
                 loc = i.loc;
                 stack = t.frames;
                 kind;
                 line_addr = Layout.line_base a;
                 seq;
               })
        end;
        (match cost with
        | Some c ->
            charge
              (if Layout.is_pm a then
                 if moved > 0 then c.flush_pm_dirty_ns else c.flush_pm_clean_ns
               else c.flush_vol_ns)
        | None -> ())
    | PFence { kind } ->
        let seq = next_seq t in
        let drained = Pstate.fence t.ps t.mem ~seq in
        push_event t
          (Trace.Fence { iid = i.iid; loc = i.loc; stack = t.frames; kind; seq });
        (match cost with
        | Some c ->
            charge
              (c.fence_base_ns
              +. (float_of_int drained *. c.fence_drain_line_ns))
        | None -> ())
    | PAlloca { dst; size } ->
        regs.(dst) <- Mem.alloc_stack t.mem size;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PCall { dst; callee; args; edge } -> (
        (match t.cov with Some c -> Coverage.mark c edge | None -> ());
        match callee with
        | Cintrinsic it ->
            let arg k = ev args.(k) in
            let r =
              match it with
              | Ipm_alloc -> Mem.alloc_pm t.mem (arg 0)
              | Ipm_base -> Layout.pm_base
              | Ipm_size -> t.cfg.pm_size
              | Imalloc -> Mem.alloc_vol t.mem (arg 0)
              | Ifree -> 0
              | Iemit ->
                  t.output_rev <- arg 0 :: t.output_rev;
                  0
              | Iabort -> raise Aborted
            in
            if dst >= 0 then regs.(dst) <- r;
            (match cost with Some c -> charge c.call_ns | None -> ())
        | Cfunc fi ->
            let callee_pf = t.pfuncs.(fi) in
            let argv = Array.map ev args in
            if t.cfg.trace then
              Array.iteri
                (fun k v ->
                  Sitestats.observe t.stats ~site:i.iid ~arg:k (classify_arg v))
                argv;
            (if t.cfg.trace then
               let seq = next_seq t in
               push_event t
                 (Trace.Call
                    {
                      iid = i.iid;
                      loc = i.loc;
                      stack = t.frames;
                      callee = callee_pf.fname;
                      arg_classes =
                        Array.to_list (Array.map classify_arg argv);
                      seq;
                    }));
            t.frames <-
              {
                Trace.func = callee_pf.fname;
                callsite = Some i.iid;
                callsite_loc = Some i.loc;
              }
              :: t.frames;
            (match cost with Some c -> charge c.call_ns | None -> ());
            let r = exec_call t callee_pf argv in
            t.frames <- List.tl t.frames;
            if dst >= 0 then regs.(dst) <- r)
    | PJmp { target; edge } ->
        (match t.cov with Some c -> Coverage.mark c edge | None -> ());
        pc := target;
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PCondbr { cond; if_true; if_false; edge_true; edge_false } ->
        let taken = ev cond <> 0 in
        (match t.cov with
        | Some c -> Coverage.mark c (if taken then edge_true else edge_false)
        | None -> ());
        pc := (if taken then if_true else if_false);
        (match cost with Some c -> charge c.op_ns | None -> ())
    | PRet v ->
        result := (match v with Some v -> ev v | None -> 0);
        running := false
    | PCrash { edge } ->
        (match t.cov with Some c -> Coverage.mark c edge | None -> ());
        record_crash_point t ~iid:(Some i.iid) ~loc:i.loc
  done;
  Mem.stack_release t.mem stack_mark;
  !result

(** [call t name args] invokes a function from the host (as the test driver
    invokes the program under valgrind). The persistency state, the trace
    and detected bugs accumulate across calls. *)
let call t name args =
  match Hashtbl.find_opt t.fidx name with
  | None -> Mem.trap "call to undefined function @%s" name
  | Some fi ->
      t.frames <- [ { Trace.func = name; callsite = None; callsite_loc = None } ];
      Fun.protect
        ~finally:(fun () -> t.frames <- [])
        (fun () -> exec_call t t.pfuncs.(fi) (Array.of_list args))

(* Results ---------------------------------------------------------------- *)

(** [exit_check t] performs the implicit crash point at program exit:
    pmemcheck's "number of stores not made persistent" summary. *)
let exit_check t =
  let crash : Report.crash_info =
    {
      crash_iid = None;
      crash_loc = Loc.make ~file:"<exit>" ~line:0;
      crash_stack = [];
    }
  in
  let bugs = Pstate.unpersisted_bugs t.ps ~crash in
  t.bugs_rev <- List.rev_append bugs t.bugs_rev;
  push_event t
    (Trace.Crash_point
       { iid = None; loc = crash.crash_loc; stack = []; seq = next_seq t })

let trace t = List.rev t.trace_rev
let site_stats t = t.stats
let bugs t = Report.dedup (List.rev t.bugs_rev)
let raw_bugs t = List.rev t.bugs_rev
let output t = List.rev t.output_rev
let cost_ns t = t.cost_ns
let steps t = t.steps
let pstate t = t.ps
let crash_image t = Mem.crash_image t.mem
let global_addr t name = Mem.global_addr t.mem name

(** One-shot convenience: run [entry] with [args], then apply the exit
    check. Returns the interpreter for inspection. *)
let run ?pm_image ?(config = default_config) prog ~entry ~args =
  let t = create ?pm_image config prog in
  let ret =
    try Ok (call t entry args) with
    | Stopped_at_crash -> Error `Stopped_at_crash
    | Aborted -> Error `Aborted
    | Out_of_fuel -> Error `Out_of_fuel
  in
  (match ret with Ok _ -> exit_check t | Error _ -> ());
  (t, ret)
