(** Machine state shared by both execution tiers.

    Owns everything an execution accumulates — memory, persistency state,
    trace, bugs, output, simulated cost, coverage, crash points — plus the
    run configuration. The interpreter ({!Interp}) and the compiled tier
    ({!Compile}) are two dispatch strategies over this one state, which is
    what makes their results comparable bit for bit. *)

open Hippo_pmir

exception Aborted
exception Out_of_fuel
exception Stopped_at_crash

type tier = [ `Interp | `Compiled ]

type config = {
  trace : bool;  (** record the PM operation trace *)
  fuel : int;  (** maximum interpreted instructions *)
  cost : Cost.t option;  (** account simulated latency *)
  stop_at_crash : int option;  (** halt at the n-th crash point (1-based) *)
  track_images : bool;  (** fingerprint both PM images incrementally *)
  coverage : Coverage.t option;
      (** mark executed control edges in this map (the fuzzer's signal);
          [None] (the default) skips all marking *)
  exec : tier;  (** which execution tier {!Exec} dispatches to *)
  vol_size : int;
  stack_size : int;
  global_size : int;
  pm_size : int;
}

(* [trace = true] is the inspection-friendly default for one-shot runs
   and the repair pipeline (the dynamic detector and Trace-AA read the
   events). Every hot loop — crash sweeps, the fuzz oracle, the served
   store, bench cases — overrides it to [false] at its own call site:
   event materialization is the single biggest per-instruction cost,
   and seq numbers advance identically either way. *)
let default_config =
  {
    trace = true;
    fuel = 200_000_000;
    cost = None;
    stop_at_crash = None;
    track_images = false;
    coverage = None;
    exec = `Compiled;
    vol_size = 1 lsl 24;
    stack_size = 1 lsl 22;
    global_size = 1 lsl 20;
    pm_size = 1 lsl 24;
  }

(* The simulated-latency accumulator lives in its own all-float record so
   both tiers update it in place: a [mutable float] in the mixed-field
   state record below would re-box on every addition, which is the single
   largest per-instruction allocation when cost accounting is on. *)
type fcell = { mutable fv : float }

type t = {
  prog : Program.t;
  pfuncs : Prep.pfunc array;
  fidx : (string, int) Hashtbl.t;
  mem : Mem.t;
  ps : Pstate.t;
  cfg : config;
  cov : Coverage.t option;  (** = [cfg.coverage], hoisted for the hot loop *)
  compiled : (int array -> int) option array;
      (** per-function entry closures, built lazily by {!Compile} *)
  cost_acc : fcell;
  mutable seq : int;
  mutable steps : int;
  mutable trace_rev : Trace.event list;
  mutable bugs_rev : Report.bug list;
  mutable output_rev : int list;
  mutable crashes_hit : int;
  mutable armed_crash : int option;
      (** dynamic fault injection: stop when [crashes_hit] reaches this
          absolute count, like [cfg.stop_at_crash] but re-armable on a
          live machine (the simulation harness injects crashes mid-run
          without rebuilding the session; tier-uniform because both
          dispatch loops share {!record_crash_point}) *)
  mutable crash_hook : (unit -> unit) option;
      (** fired at every explicit crash point (the single-pass sweep's
          image-capture callback) *)
  mutable frames : Trace.stack;  (** current call stack, innermost first *)
  stats : Sitestats.t;  (** per-site pointer-class observations *)
}

let create ?pm_image ?pm_brk (cfg : config) (prog : Program.t) : t =
  let funcs = Program.funcs prog in
  let fidx = Hashtbl.create 64 in
  List.iteri (fun i f -> Hashtbl.add fidx (Func.name f) i) funcs;
  let mem =
    Mem.create ~vol_size:cfg.vol_size ~stack_size:cfg.stack_size
      ~global_size:cfg.global_size ~pm_size:cfg.pm_size ?pm_image ?pm_brk
      ~track_images:cfg.track_images (Program.globals prog)
  in
  let global_addr = Mem.global_addr mem in
  let pfuncs =
    Array.of_list (List.map (Prep.prepare_func ~fidx ~global_addr) funcs)
  in
  {
    prog;
    pfuncs;
    fidx;
    mem;
    ps = Pstate.create ();
    cfg;
    cov = cfg.coverage;
    compiled = Array.make (Array.length pfuncs) None;
    cost_acc = { fv = 0.0 };
    seq = 0;
    steps = 0;
    trace_rev = [];
    bugs_rev = [];
    output_rev = [];
    crashes_hit = 0;
    armed_crash = None;
    crash_hook = None;
    frames = [];
    stats = Sitestats.create ();
  }

let mem t = t.mem
let set_crash_hook t f = t.crash_hook <- Some f

(** [arm_crash t ~at] schedules a {!Stopped_at_crash} at the [at]-th
    explicit crash point (absolute, 1-based, compared against
    {!crash_points_hit}); [disarm_crash] cancels it. Unlike
    [cfg.stop_at_crash] this is mutable on a live machine, so a fault
    injector can arm crash [k] for one workload call and disarm (or
    re-arm) for the next — identically in both tiers. *)
let arm_crash t ~at = t.armed_crash <- Some at
let disarm_crash t = t.armed_crash <- None

(** Explicit crash points passed so far — maintained whether or not the
    trace is recorded, so callers can count crash points without
    materializing a trace. *)
let crash_points_hit t = t.crashes_hit

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let push_event t ev = if t.cfg.trace then t.trace_rev <- ev :: t.trace_rev

let classify_arg v : Trace.arg_class =
  if Layout.is_pm v then Trace.Pm_ptr
  else if Layout.is_volatile_ptr v then Trace.Vol_ptr
  else Trace.Not_ptr

let record_crash_point t ~iid ~loc =
  t.crashes_hit <- t.crashes_hit + 1;
  let crash : Report.crash_info =
    { crash_iid = iid; crash_loc = loc; crash_stack = t.frames }
  in
  (* The seq counter advances at crash points whether or not the trace is
     recorded: store seqs embedded in bug reports must not depend on the
     trace flag. Only the event construction is gated. *)
  let seq = next_seq t in
  if t.cfg.trace then
    push_event t (Trace.Crash_point { iid; loc; stack = t.frames; seq });
  let bugs = Pstate.unpersisted_bugs t.ps ~crash in
  t.bugs_rev <- List.rev_append bugs t.bugs_rev;
  (match t.crash_hook with Some f -> f () | None -> ());
  (match t.armed_crash with
  | Some n when t.crashes_hit >= n -> raise Stopped_at_crash
  | _ -> ());
  match t.cfg.stop_at_crash with
  | Some n when t.crashes_hit >= n -> raise Stopped_at_crash
  | _ -> ()

(** [exit_check t] performs the implicit crash point at program exit:
    pmemcheck's "number of stores not made persistent" summary. *)
let exit_check t =
  let crash : Report.crash_info =
    {
      crash_iid = None;
      crash_loc = Loc.make ~file:"<exit>" ~line:0;
      crash_stack = [];
    }
  in
  let bugs = Pstate.unpersisted_bugs t.ps ~crash in
  t.bugs_rev <- List.rev_append bugs t.bugs_rev;
  let seq = next_seq t in
  if t.cfg.trace then
    push_event t
      (Trace.Crash_point { iid = None; loc = crash.crash_loc; stack = []; seq })

let trace t = List.rev t.trace_rev
let site_stats t = t.stats
let bugs t = Report.dedup (List.rev t.bugs_rev)
let raw_bugs t = List.rev t.bugs_rev
let output t = List.rev t.output_rev
let cost_ns t = t.cost_acc.fv
let steps t = t.steps
let pstate t = t.ps
let crash_image t = Mem.crash_image t.mem
let global_addr t name = Mem.global_addr t.mem name
