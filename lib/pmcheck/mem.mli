(** Byte-addressable simulated memory.

    The working PM image is what loads observe; the persisted image is
    what survives a crash. Stores touch only the working image; the
    persistency state machine ({!Pstate}) copies ranges into the persisted
    image when they become durable (flush + fence, or [clflush]).

    PMIR is a 63-bit machine (OCaml ints): 8-byte stores mask the sign
    extension so byte 7 round-trips through byte-wise loads.

    With [~track_images:true] the memory additionally maintains, at
    O(bytes changed) per operation, a live {!Imghash} fingerprint of both
    images plus a touched-bytes watermark — the machinery behind the
    single-pass crash sweep's image capture and dedup ({!Crashsim}). *)

exception Trap of string
(** Raised on invalid accesses (out of bounds, null page, wild pointers,
    bad sizes) and resource exhaustion. *)

val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a

type tracker

type t = {
  vol : Bytes.t;
  stack : Bytes.t;
  globals : Bytes.t;
  pm : Bytes.t;  (** working image: the CPU-cache view of PM *)
  pm_persisted : Bytes.t;  (** durable image: what a crash preserves *)
  mutable vol_brk : int;
  mutable stack_brk : int;
  mutable pm_brk : int;
  global_addrs : (string * int) list;
  track : tracker option;
}

(** [create globals] builds a fresh memory; [?pm_image] seeds both PM
    images (a restart from a previous durable image); [?pm_brk] restores
    the PM allocator's high-water mark alongside the image — a real PM
    allocator persists its heap metadata, so a restarted program must
    not re-issue addresses that are already in use (default 0: a fresh
    pool); [?track_images] (default false) turns on image fingerprinting
    and snapshots. *)
val create :
  ?vol_size:int ->
  ?stack_size:int ->
  ?global_size:int ->
  ?pm_size:int ->
  ?pm_image:Bytes.t ->
  ?pm_brk:int ->
  ?track_images:bool ->
  (string * int) list ->
  t

val global_addr : t -> string -> int

(** Little-endian load/store of 1, 2, 4 or 8 bytes. *)
val load : t -> addr:int -> size:int -> int

val store : t -> addr:int -> size:int -> int -> unit

(** Size-specialized variants for the compiled tier: same bounds checks
    and trap messages as [load]/[store], without the per-access size
    dispatch. The [storeN] variants bypass the image tracker and must only
    be used when {!tracking} is false. *)

val load1 : t -> int -> int
val load2 : t -> int -> int
val load4 : t -> int -> int
val load8 : t -> int -> int
val store1 : t -> int -> int -> unit
val store2 : t -> int -> int -> unit
val store4 : t -> int -> int -> unit
val store8 : t -> int -> int -> unit

(** [persist_range t ~addr ~size] copies working PM content into the
    persisted image (called by {!Pstate} when a range becomes durable). *)
val persist_range : t -> addr:int -> size:int -> unit

(** [persist_string t ~addr s] makes a flush-time snapshot durable — the
    snapshot bytes, not the current working bytes, are what the flush
    wrote back ({!Pstate}'s write-pending-queue drain). *)
val persist_string : t -> addr:int -> string -> unit

(** Snapshot of the durable image: the post-crash PM contents. *)
val crash_image : t -> Bytes.t

(** Snapshot of the working image (as if everything had reached PM). *)
val working_image : t -> Bytes.t

(** Whether image tracking is on. The digest and snapshot functions below
    trap when it is not. *)
val tracking : t -> bool

(** Live fingerprint of the working image, maintained incrementally. *)
val working_digest : t -> Imghash.digest

(** Live fingerprint of the durable image, maintained incrementally. *)
val durable_digest : t -> Imghash.digest

type pm_snapshot
(** A compact captured image: the touched-bytes prefix plus a shared
    reference to the creation-time image. O(touched bytes) to take. *)

val snapshot_durable : t -> pm_snapshot
val snapshot_working : t -> pm_snapshot

(** Materialize a snapshot as a full PM image, suitable for
    [create ?pm_image]. *)
val snapshot_to_image : pm_snapshot -> Bytes.t

val alloc_vol : t -> int -> int

(** PM allocations are cache-line aligned, as PMDK's allocator guarantees;
    distinct objects never share flush granules. *)
val alloc_pm : t -> int -> int

(** Per-call-frame stack discipline for [alloca]. *)
val stack_mark : t -> int

val stack_release : t -> int -> unit
val alloc_stack : t -> int -> int

(** Host-side convenience accessors (the "client" writing wire buffers). *)
val write_string : t -> addr:int -> string -> unit

val read_string : t -> addr:int -> len:int -> string
