(** Program preparation shared by both execution tiers.

    Lowers {!Hippo_pmir} functions into a flat, name-free form: register
    names become array slots, block labels become code indices, callees
    become function indices, and coverage-edge hashes are precomputed.
    The interpreter ({!Interp}) walks the [code] array directly; the
    compiled tier ({!Compile}) turns each basic block into a closure
    chain using [leaders] as block boundaries. *)

open Hippo_pmir

type pval = PReg of int | PImm of int

type intrinsic =
  | Ipm_alloc
  | Ipm_base
  | Ipm_size
  | Imalloc
  | Ifree
  | Iemit
  | Iabort

type callee = Cfunc of int | Cintrinsic of intrinsic

type pop =
  | PStore of { addr : pval; value : pval; size : int; nt : bool }
  | PLoad of { dst : int; addr : pval; size : int }
  | PFlush of { kind : Instr.flush_kind; addr : pval }
  | PFence of { kind : Instr.fence_kind }
  | PBinop of { dst : int; op : Instr.binop; lhs : pval; rhs : pval }
  | PMov of { dst : int; src : pval }
  | PGep of { dst : int; base : pval; offset : pval }
  | PAlloca of { dst : int; size : int }
  | PCall of { dst : int; callee : callee; args : pval array; edge : int }
      (** [dst = -1] when the result is discarded *)
  | PJmp of { target : int; edge : int }
  | PCondbr of {
      cond : pval;
      if_true : int;
      if_false : int;
      edge_true : int;
      edge_false : int;
    }
  | PRet of pval option
  | PCrash of { edge : int }

type pinstr = { iid : Iid.t; loc : Loc.t; op : pop }

type pfunc = {
  fname : string;
  nregs : int;
  pslots : int array;  (** parameter positions -> register slots *)
  code : pinstr array;
  leaders : int array;
      (** code index of each block's first instruction, in block order *)
}

val intrinsic_of_name : string -> intrinsic option

(** [prepare_func ~fidx ~global_addr f] lowers one function. [fidx] maps
    function names to indices; [global_addr] resolves global names to
    their addresses (typically [Mem.global_addr mem]). *)
val prepare_func :
  fidx:(string, int) Hashtbl.t -> global_addr:(string -> int) -> Func.t -> pfunc
