(** Incremental 128-bit PM-image fingerprints (Zobrist-style XOR hash).

    The digest of an image is the XOR over all offsets of a mixed
    [(offset, byte)] value; zero bytes contribute nothing. XOR makes the
    digest order-independent and maintainable in O(bytes changed):
    {!Mem} keeps a live fingerprint of the working and durable PM images
    so the crash sweep can deduplicate byte-identical crash states
    without copying or rehashing them (DESIGN.md §7b). *)

type digest = { h1 : int64; h2 : int64 }

val zero_digest : digest
(** Digest of an all-zero image. *)

val equal_digest : digest -> digest -> bool
val pp_digest : Format.formatter -> digest -> unit

type t
(** A mutable fingerprint accumulator. *)

val create : unit -> t
(** Fingerprint of an all-zero image. *)

val copy : t -> t
val reset : t -> unit

val update : t -> off:int -> old_byte:int -> new_byte:int -> unit
(** Re-fingerprint one byte change at [off]. A no-op when the byte is
    unchanged. *)

val of_bytes : Bytes.t -> t
(** Fingerprint an image from scratch — the ground truth every sequence
    of {!update}s must agree with. *)

val digest : t -> digest

module Digest_key : Hashtbl.HashedType with type t = digest
