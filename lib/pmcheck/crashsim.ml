(** Crash simulation: demonstrates that reported durability bugs are real
    (some crash leaves the application unrecoverable) and that repaired
    programs are crash consistent.

    A scenario runs a workload, crashes it at its [n]-th crash point, takes
    the durable PM image ({!Mem.crash_image}), restarts the program on that
    image and runs a recovery checker function. The checker returns nonzero
    when the recovered state satisfies the application's invariant.

    Two images are checked per crash point: the pessimistic image (only
    explicitly persisted data survived) and the lucky image (every cached
    line happened to be evicted before the crash — the case that makes
    durability bugs so hard to observe in testing). A durability bug is
    {e demonstrated} when the lucky image recovers but the pessimistic one
    does not. *)


type verdict = {
  crash_index : int;
  pessimistic_ok : bool;  (** recovery succeeded on the durable image *)
  lucky_ok : bool;  (** recovery succeeded on the working image *)
}

let consistent v = v.pessimistic_ok

(** [check_crash prog ~setup ~checker ~crash_index] runs [setup] (a list of
    host calls [(func, args)]) stopping at the given crash point, then
    recovers both images with [checker] (a nullary or unary function in the
    program returning nonzero on success). *)
let check_crash ?(config = Interp.default_config) prog
    ~(setup : (string * int list) list) ~(checker : string)
    ~(checker_args : int list) ~crash_index : verdict =
  let cfg = { config with Interp.stop_at_crash = Some crash_index; trace = false } in
  let t = Interp.create cfg prog in
  let stopped =
    try
      List.iter (fun (f, args) -> ignore (Interp.call t f args)) setup;
      false
    with Interp.Stopped_at_crash -> true
  in
  if not stopped then
    invalid_arg
      (Fmt.str "Crashsim.check_crash: workload reached only %d crash points"
         crash_index);
  let recover image =
    let cfg' = { config with Interp.stop_at_crash = None; trace = false } in
    let t' = Interp.create ~pm_image:image cfg' prog in
    match Interp.call t' checker checker_args with
    | r -> r <> 0
    | exception (Mem.Trap _ | Interp.Aborted) -> false
  in
  {
    crash_index;
    pessimistic_ok = recover (Interp.crash_image t);
    lucky_ok = recover (Mem.working_image (Interp.mem t));
  }

(** Count the crash points a workload passes through. *)
let count_crash_points ?(config = Interp.default_config) prog
    ~(setup : (string * int list) list) =
  let cfg = { config with Interp.stop_at_crash = None; trace = true } in
  let t = Interp.create cfg prog in
  List.iter (fun (f, args) -> ignore (Interp.call t f args)) setup;
  List.length
    (List.filter
       (function Trace.Crash_point { iid = Some _; _ } -> true | _ -> false)
       (Interp.trace t))

(** [sweep ?jobs prog ~setup ~checker ~checker_args] checks every crash
    point of the workload; returns the verdicts in crash-point order.
    Crash points are independent scenarios (each re-runs the workload
    from scratch on its own interpreter), so [jobs > 1] fans them out
    over a domain pool; results are collected in submission order, so the
    verdict list is identical to the serial sweep. *)
let sweep ?config ?(jobs = 1) prog ~setup ~checker ~checker_args =
  let n = count_crash_points ?config prog ~setup in
  let check k =
    check_crash ?config prog ~setup ~checker ~checker_args ~crash_index:k
  in
  let indices = List.init n (fun k -> k + 1) in
  if jobs <= 1 then List.map check indices
  else
    Hippo_parallel.Pool.run ~domains:jobs (fun pool ->
        Hippo_parallel.Pool.map pool check indices)

(** A program is crash consistent for a workload when recovery succeeds on
    the pessimistic image of every crash point. *)
let crash_consistent ?config ?jobs prog ~setup ~checker ~checker_args =
  List.for_all consistent (sweep ?config ?jobs prog ~setup ~checker ~checker_args)
