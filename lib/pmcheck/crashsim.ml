(** Crash simulation: demonstrates that reported durability bugs are real
    (some crash leaves the application unrecoverable) and that repaired
    programs are crash consistent.

    A scenario runs a workload, crashes it at its [n]-th crash point, takes
    the durable PM image ({!Mem.crash_image}), restarts the program on that
    image and runs a recovery checker function. The checker returns nonzero
    when the recovered state satisfies the application's invariant.

    Two images are checked per crash point: the pessimistic image (only
    explicitly persisted data survived) and the lucky image (every cached
    line happened to be evicted before the crash — the case that makes
    durability bugs so hard to observe in testing). A durability bug is
    {e demonstrated} when the lucky image recovers but the pessimistic one
    does not.

    Two sweep strategies:

    - [`Single_pass] (default): one instrumented run of the workload
      captures both images at every crash point incrementally — the
      durable image is a mutable base the persistency machine already
      maintains, so capture is a fingerprint read plus an O(touched
      bytes) copy-on-first-occurrence snapshot. Recovery runs are
      deduplicated by image fingerprint and memoized in a {!Memo} table:
      [k] distinct images cost [k] recovery runs instead of [2n].
      O(workload + k·recovery) total.
    - [`Replay]: the historical per-crash-point replay — re-executes the
      workload prefix for each of the [n] crash points, O(n²) interpreter
      work. Kept for differential testing of the single-pass path.

    Dedup is sound because recovery is a pure function of the crash
    image: the recovery interpreter starts from nothing but the image
    bytes and the (fixed) program, so byte-identical images must produce
    identical verdicts (DESIGN.md §7b). *)

type verdict = {
  crash_index : int;
  pessimistic_ok : bool;  (** recovery succeeded on the durable image *)
  lucky_ok : bool;  (** recovery succeeded on the working image *)
}

let consistent v = v.pessimistic_ok

type strategy = [ `Single_pass | `Replay ]

type stats = {
  crash_points : int;
  distinct_pessimistic : int;  (** distinct durable images over the sweep *)
  distinct_lucky : int;  (** distinct working images over the sweep *)
  distinct_images : int;  (** distinct images overall (the two can meet) *)
  recovery_runs : int;  (** checker executions actually performed *)
  memo_hits : int;  (** image checks answered without running recovery *)
}

(** Memoized recovery verdicts, keyed by (program, checker, checker args,
    image fingerprint) — everything the recovery run depends on. Reusable
    across sweeps (original vs repaired program, corpus cases on one
    worker domain); reuse assumes the sweeps run under one interpreter
    config. Sharing is read-only from worker domains: sweeps consult the
    table before fanning recovery out and write results back serially. *)
module Memo = struct
  type key = {
    prog_sig : string;  (** digest of the printed program *)
    checker : string;
    checker_args : int list;
    image : Imghash.digest;
  }

  type t = {
    table : (key, bool) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create () = { table = Hashtbl.create 256; hits = 0; misses = 0 }
  let hits m = m.hits
  let misses m = m.misses
  let size m = Hashtbl.length m.table

  (** Fold [m]'s counters into [into] (reporting-only merge of per-domain
      tables, mirroring {!Hippo_engine.Cache.merge_stats}). *)
  let merge_stats ~into m =
    into.hits <- into.hits + m.hits;
    into.misses <- into.misses + m.misses
end

let program_sig prog = Digest.string (Hippo_pmir.Printer.to_string prog)

(* Recovery: restart the program on a crash image and run the checker.
   Pure in the image — the basis for dedup. *)
let recover ~config prog ~checker ~checker_args image =
  let cfg =
    { config with Interp.stop_at_crash = None; trace = false; track_images = false }
  in
  let t = Interp.create ~pm_image:image cfg prog in
  match Exec.call t checker checker_args with
  | r -> r <> 0
  | exception (Mem.Trap _ | Interp.Aborted) -> false

(** [check_crash prog ~setup ~checker ~crash_index] runs [setup] (a list of
    host calls [(func, args)]) stopping at the given crash point, then
    recovers both images with [checker] (a nullary or unary function in the
    program returning nonzero on success). This is the [`Replay] primitive:
    it re-executes the workload from scratch. *)
let check_crash ?(config = Interp.default_config) prog
    ~(setup : (string * int list) list) ~(checker : string)
    ~(checker_args : int list) ~crash_index : verdict =
  let cfg =
    {
      config with
      Interp.stop_at_crash = Some crash_index;
      trace = false;
      track_images = false;
    }
  in
  let t = Interp.create cfg prog in
  let stopped =
    try
      List.iter (fun (f, args) -> ignore (Exec.call t f args)) setup;
      false
    with Interp.Stopped_at_crash -> true
  in
  if not stopped then
    invalid_arg
      (Fmt.str "Crashsim.check_crash: workload reached only %d crash points"
         crash_index);
  let recover = recover ~config prog ~checker ~checker_args in
  {
    crash_index;
    pessimistic_ok = recover (Interp.crash_image t);
    lucky_ok = recover (Mem.working_image (Interp.mem t));
  }

(** Count the crash points a workload passes through — the interpreter's
    crash-point counter, no trace materialized. *)
let count_crash_points ?(config = Interp.default_config) prog
    ~(setup : (string * int list) list) =
  let cfg =
    { config with Interp.stop_at_crash = None; trace = false; track_images = false }
  in
  let t = Interp.create cfg prog in
  List.iter (fun (f, args) -> ignore (Exec.call t f args)) setup;
  Interp.crash_points_hit t

(* The historical strategy: one full replay per crash point, fanned out
   over the domain pool (each crash point is an independent scenario). *)
let replay_sweep ?config ~jobs prog ~setup ~checker ~checker_args =
  let n = count_crash_points ?config prog ~setup in
  let check k =
    check_crash ?config prog ~setup ~checker ~checker_args ~crash_index:k
  in
  let indices = List.init n (fun k -> k + 1) in
  let verdicts =
    if jobs <= 1 then List.map check indices
    else
      Hippo_parallel.Pool.run ~domains:jobs (fun pool ->
          Hippo_parallel.Pool.map pool check indices)
  in
  ( verdicts,
    {
      (* replay never fingerprints, so distinct counts degenerate to n *)
      crash_points = n;
      distinct_pessimistic = n;
      distinct_lucky = n;
      distinct_images = 2 * n;
      recovery_runs = 2 * n;
      memo_hits = 0;
    } )

(* The single-pass strategy: one instrumented run captures a fingerprint
   pair per crash point and a compact snapshot per *distinct* image;
   recovery runs once per distinct un-memoized image (fanned out over the
   pool in first-occurrence order, so verdict lists are byte-identical at
   every [jobs]). *)
let single_pass_sweep ?(config = Interp.default_config) ~jobs ~memo ~prog_sig
    prog ~setup ~checker ~checker_args =
  let cfg =
    { config with Interp.stop_at_crash = None; trace = false; track_images = true }
  in
  let t = Interp.create cfg prog in
  let mem = Interp.mem t in
  let points = ref [] in
  (* digest -> compact snapshot, first occurrence only *)
  let images : (Imghash.digest, Mem.pm_snapshot) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let capture digest snapshot =
    if not (Hashtbl.mem images digest) then begin
      Hashtbl.add images digest (snapshot ());
      order := digest :: !order
    end
  in
  Interp.set_crash_hook t (fun () ->
      let dp = Mem.durable_digest mem and dl = Mem.working_digest mem in
      capture dp (fun () -> Mem.snapshot_durable mem);
      capture dl (fun () -> Mem.snapshot_working mem);
      points := (Interp.crash_points_hit t, dp, dl) :: !points);
  List.iter (fun (f, args) -> ignore (Exec.call t f args)) setup;
  let points = List.rev !points in
  let order = List.rev !order in
  let key image = { Memo.prog_sig; checker; checker_args; image } in
  let pending =
    List.filter (fun d -> not (Hashtbl.mem memo.Memo.table (key d))) order
  in
  let run_one d =
    recover ~config prog ~checker ~checker_args
      (Mem.snapshot_to_image (Hashtbl.find images d))
  in
  let results =
    if jobs <= 1 then List.map run_one pending
    else
      Hippo_parallel.Pool.run ~domains:jobs (fun pool ->
          Hippo_parallel.Pool.map pool run_one pending)
  in
  List.iter2
    (fun d ok -> Hashtbl.replace memo.Memo.table (key d) ok)
    pending results;
  let verdict_of d = Hashtbl.find memo.Memo.table (key d) in
  let verdicts =
    List.map
      (fun (i, dp, dl) ->
        { crash_index = i; pessimistic_ok = verdict_of dp; lucky_ok = verdict_of dl })
      points
  in
  let n = List.length points in
  let distinct f =
    List.length
      (List.sort_uniq compare (List.map (fun (_, dp, dl) -> f dp dl) points))
  in
  let runs = List.length pending in
  let hits = (2 * n) - runs in
  memo.Memo.hits <- memo.Memo.hits + hits;
  memo.Memo.misses <- memo.Memo.misses + runs;
  ( verdicts,
    {
      crash_points = n;
      distinct_pessimistic = distinct (fun dp _ -> dp);
      distinct_lucky = distinct (fun _ dl -> dl);
      distinct_images = List.length order;
      recovery_runs = runs;
      memo_hits = hits;
    } )

(** [sweep_with_stats ?strategy ?memo prog ~setup ~checker ~checker_args]
    checks every crash point of the workload; returns the verdicts in
    crash-point order plus dedup statistics. The verdict list is
    byte-identical across strategies and [jobs] settings. [?memo]
    (single-pass only) carries recovery verdicts across sweeps; [?memo_sig]
    overrides the program component of the memo key — pass one signature
    for two programs only when their checkers are known equivalent on
    every image (e.g. original vs harm-free repair, see
    {!Hippo_engine.Verify}). *)
let sweep_with_stats ?config ?(jobs = 1) ?(strategy = `Single_pass) ?memo
    ?memo_sig prog ~setup ~checker ~checker_args =
  match strategy with
  | `Replay -> replay_sweep ?config ~jobs prog ~setup ~checker ~checker_args
  | `Single_pass ->
      let memo = match memo with Some m -> m | None -> Memo.create () in
      let prog_sig =
        match memo_sig with Some s -> s | None -> program_sig prog
      in
      single_pass_sweep ?config ~jobs ~memo ~prog_sig prog ~setup ~checker
        ~checker_args

(** [sweep] is {!sweep_with_stats} without the statistics. *)
let sweep ?config ?jobs ?strategy ?memo prog ~setup ~checker ~checker_args =
  fst
    (sweep_with_stats ?config ?jobs ?strategy ?memo prog ~setup ~checker
       ~checker_args)

(** A program is crash consistent for a workload when recovery succeeds on
    the pessimistic image of every crash point. *)
let crash_consistent ?config ?jobs ?strategy ?memo prog ~setup ~checker
    ~checker_args =
  List.for_all consistent
    (sweep ?config ?jobs ?strategy ?memo prog ~setup ~checker ~checker_args)
