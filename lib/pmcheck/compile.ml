(** The compiled execution tier: closure-threaded PMIR.

    Each prepared basic block ({!Prep.pfunc}[.leaders]) becomes one chain
    of OCaml closures: registers live in a preallocated [int array],
    operand shapes (register/immediate) and access sizes are specialized
    when the closure is built, branch targets are pre-resolved to block
    slots, and the trace/coverage/cost/image hooks are baked in at compile
    time — a disabled hook costs nothing, not a branch per instruction.
    Control transfers are tail calls between block closures, so loops run
    in constant OCaml stack.

    Fuel is pre-charged per segment (a maximal run of instructions that
    cannot start a nested call or raise [Stopped_at_crash]): when the
    remaining fuel covers the whole segment, the fast chain runs with no
    per-instruction bookkeeping; otherwise a per-instruction counted chain
    reproduces the interpreter's [Out_of_fuel] point exactly. [steps] can
    overshoot by at most a segment tail when a {!Mem.Trap} aborts a run
    mid-segment; every quantity in the parity contract (trace, bugs,
    output, [cost_ns], coverage, crash images, seq numbers) is
    bit-identical with {!Interp}.

    Functions compile lazily, memoized per machine in
    {!Machine.t}[.compiled]. *)

open Hippo_pmir
open Prep
open Machine

type code = int array -> int

let rec get_fn (t : Machine.t) (fi : int) : code =
  match t.compiled.(fi) with
  | Some f -> f
  | None ->
      let f = compile_func t fi in
      t.compiled.(fi) <- Some f;
      f

and compile_func (t : Machine.t) (fi : int) : code =
  let pf = t.pfuncs.(fi) in
  let fname = pf.fname in
  let code = pf.code in
  let ncode = Array.length code in
  let mem = t.mem in
  let ps = t.ps in
  let cfg = t.cfg in
  let fuel = cfg.fuel in
  let trace = cfg.trace in
  let cost = cfg.cost in
  let cov = t.cov in
  let stats = t.stats in
  let acc = t.cost_acc in
  let tracking = Mem.tracking mem in
  let leaders = pf.leaders in
  let nblocks = Array.length leaders in
  let fell_off : code =
   fun _ -> Mem.trap "fell off the end of @%s (missing ret)" fname
  in
  (* Slot [nblocks] is the virtual past-the-end block: falling through the
     last block is the interpreter's missing-ret trap. *)
  let blocks : code array = Array.make (nblocks + 1) fell_off in
  let slot_tbl = Hashtbl.create ((nblocks * 2) + 1) in
  Array.iteri (fun b idx -> Hashtbl.replace slot_tbl idx b) leaders;
  let slot_of idx =
    match Hashtbl.find_opt slot_tbl idx with
    | Some b -> b
    | None -> assert false (* branch targets are always block leaders *)
  in
  let evc : pval -> code = function
    | PReg x -> fun regs -> Array.unsafe_get regs x
    | PImm n -> fun _ -> n
  in
  (* Continuation for register-only ops: charge op_ns, or nothing at all. *)
  let fin_pure (next : code) : code =
    match cost with
    | None -> next
    | Some c ->
        let ns = c.op_ns in
        fun regs ->
          acc.fv <- acc.fv +. ns;
          next regs
  in
  (* Enter block [tgt], marking the edge / charging the branch as
     configured. The block closure is fetched at run time because blocks
     are filled after their predecessors compile. *)
  let jump (edge : int) (tgt : int) : code =
    match (cov, cost) with
    | None, None -> fun regs -> (Array.unsafe_get blocks tgt) regs
    | Some cv, None ->
        fun regs ->
          Coverage.mark cv edge;
          (Array.unsafe_get blocks tgt) regs
    | None, Some c ->
        let ns = c.op_ns in
        fun regs ->
          acc.fv <- acc.fv +. ns;
          (Array.unsafe_get blocks tgt) regs
    | Some cv, Some c ->
        let ns = c.op_ns in
        fun regs ->
          Coverage.mark cv edge;
          acc.fv <- acc.fv +. ns;
          (Array.unsafe_get blocks tgt) regs
  in
  let compile_instr (i : pinstr) (next : code) : code =
    match i.op with
    | PBinop { dst; op; lhs; rhs } -> (
        let fin = fin_pure next in
        let mk frr fri fir fii : code =
          match (lhs, rhs) with
          | PReg x, PReg y -> frr x y
          | PReg x, PImm n -> fri x n
          | PImm n, PReg y -> fir n y
          | PImm a, PImm b -> fii a b
        in
        let const r : code =
         fun regs ->
          Array.unsafe_set regs dst r;
          fin regs
        in
        match op with
        | Instr.Add ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x + Array.unsafe_get regs y);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst (Array.unsafe_get regs x + n);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst (n + Array.unsafe_get regs y);
                fin regs)
              (fun a b -> const (a + b))
        | Instr.Sub ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x - Array.unsafe_get regs y);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst (Array.unsafe_get regs x - n);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst (n - Array.unsafe_get regs y);
                fin regs)
              (fun a b -> const (a - b))
        | Instr.Mul ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x * Array.unsafe_get regs y);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst (Array.unsafe_get regs x * n);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst (n * Array.unsafe_get regs y);
                fin regs)
              (fun a b -> const (a * b))
        | Instr.Div ->
            mk
              (fun x y regs ->
                let b = Array.unsafe_get regs y in
                if b = 0 then Mem.trap "division by zero"
                else begin
                  Array.unsafe_set regs dst (Array.unsafe_get regs x / b);
                  fin regs
                end)
              (fun x n ->
                if n = 0 then fun _ -> Mem.trap "division by zero"
                else
                  fun regs ->
                    Array.unsafe_set regs dst (Array.unsafe_get regs x / n);
                    fin regs)
              (fun n y regs ->
                let b = Array.unsafe_get regs y in
                if b = 0 then Mem.trap "division by zero"
                else begin
                  Array.unsafe_set regs dst (n / b);
                  fin regs
                end)
              (fun a b ->
                if b = 0 then fun _ -> Mem.trap "division by zero"
                else const (a / b))
        | Instr.Rem ->
            mk
              (fun x y regs ->
                let b = Array.unsafe_get regs y in
                if b = 0 then Mem.trap "remainder by zero"
                else begin
                  Array.unsafe_set regs dst (Array.unsafe_get regs x mod b);
                  fin regs
                end)
              (fun x n ->
                if n = 0 then fun _ -> Mem.trap "remainder by zero"
                else
                  fun regs ->
                    Array.unsafe_set regs dst (Array.unsafe_get regs x mod n);
                    fin regs)
              (fun n y regs ->
                let b = Array.unsafe_get regs y in
                if b = 0 then Mem.trap "remainder by zero"
                else begin
                  Array.unsafe_set regs dst (n mod b);
                  fin regs
                end)
              (fun a b ->
                if b = 0 then fun _ -> Mem.trap "remainder by zero"
                else const (a mod b))
        | Instr.And ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x land Array.unsafe_get regs y);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst (Array.unsafe_get regs x land n);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst (n land Array.unsafe_get regs y);
                fin regs)
              (fun a b -> const (a land b))
        | Instr.Or ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x lor Array.unsafe_get regs y);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst (Array.unsafe_get regs x lor n);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst (n lor Array.unsafe_get regs y);
                fin regs)
              (fun a b -> const (a lor b))
        | Instr.Xor ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x lxor Array.unsafe_get regs y);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst (Array.unsafe_get regs x lxor n);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst (n lxor Array.unsafe_get regs y);
                fin regs)
              (fun a b -> const (a lxor b))
        | Instr.Shl ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x lsl (Array.unsafe_get regs y land 62));
                fin regs)
              (fun x n ->
                let sh = n land 62 in
                fun regs ->
                  Array.unsafe_set regs dst (Array.unsafe_get regs x lsl sh);
                  fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (n lsl (Array.unsafe_get regs y land 62));
                fin regs)
              (fun a b -> const (a lsl (b land 62)))
        | Instr.Lshr ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (Array.unsafe_get regs x lsr (Array.unsafe_get regs y land 62));
                fin regs)
              (fun x n ->
                let sh = n land 62 in
                fun regs ->
                  Array.unsafe_set regs dst (Array.unsafe_get regs x lsr sh);
                  fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (n lsr (Array.unsafe_get regs y land 62));
                fin regs)
              (fun a b -> const (a lsr (b land 62)))
        | Instr.Eq ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x = Array.unsafe_get regs y then 1
                   else 0);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x = n then 1 else 0);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (if n = Array.unsafe_get regs y then 1 else 0);
                fin regs)
              (fun a b -> const (if a = b then 1 else 0))
        | Instr.Ne ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x <> Array.unsafe_get regs y then 1
                   else 0);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x <> n then 1 else 0);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (if n <> Array.unsafe_get regs y then 1 else 0);
                fin regs)
              (fun a b -> const (if a <> b then 1 else 0))
        | Instr.Lt ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x < Array.unsafe_get regs y then 1
                   else 0);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x < n then 1 else 0);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (if n < Array.unsafe_get regs y then 1 else 0);
                fin regs)
              (fun a b -> const (if a < b then 1 else 0))
        | Instr.Le ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x <= Array.unsafe_get regs y then 1
                   else 0);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x <= n then 1 else 0);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (if n <= Array.unsafe_get regs y then 1 else 0);
                fin regs)
              (fun a b -> const (if a <= b then 1 else 0))
        | Instr.Gt ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x > Array.unsafe_get regs y then 1
                   else 0);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x > n then 1 else 0);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (if n > Array.unsafe_get regs y then 1 else 0);
                fin regs)
              (fun a b -> const (if a > b then 1 else 0))
        | Instr.Ge ->
            mk
              (fun x y regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x >= Array.unsafe_get regs y then 1
                   else 0);
                fin regs)
              (fun x n regs ->
                Array.unsafe_set regs dst
                  (if Array.unsafe_get regs x >= n then 1 else 0);
                fin regs)
              (fun n y regs ->
                Array.unsafe_set regs dst
                  (if n >= Array.unsafe_get regs y then 1 else 0);
                fin regs)
              (fun a b -> const (if a >= b then 1 else 0)))
    | PMov { dst; src } -> (
        let fin = fin_pure next in
        match src with
        | PReg x ->
            fun regs ->
              Array.unsafe_set regs dst (Array.unsafe_get regs x);
              fin regs
        | PImm n ->
            fun regs ->
              Array.unsafe_set regs dst n;
              fin regs)
    | PGep { dst; base; offset } -> (
        let fin = fin_pure next in
        match (base, offset) with
        | PReg x, PReg y ->
            fun regs ->
              Array.unsafe_set regs dst
                (Array.unsafe_get regs x + Array.unsafe_get regs y);
              fin regs
        | PReg x, PImm n ->
            fun regs ->
              Array.unsafe_set regs dst (Array.unsafe_get regs x + n);
              fin regs
        | PImm n, PReg y ->
            fun regs ->
              Array.unsafe_set regs dst (n + Array.unsafe_get regs y);
              fin regs
        | PImm a, PImm b ->
            let r = a + b in
            fun regs ->
              Array.unsafe_set regs dst r;
              fin regs)
    | PAlloca { dst; size } ->
        let fin = fin_pure next in
        fun regs ->
          Array.unsafe_set regs dst (Mem.alloc_stack mem size);
          fin regs
    | PLoad { dst; addr; size } -> (
        (* Sizes 1 and 8 dominate generated code (byte scans, word and
           pointer loads); giving them fully applied accessor calls lets
           the [@inline] bodies land in the closure — a partial
           application here would cost an indirect call per load. *)
        match (size, addr, cost) with
        | 1, PReg x, None ->
            fun regs ->
              Array.unsafe_set regs dst
                (Mem.load1 mem (Array.unsafe_get regs x));
              next regs
        | 1, PReg x, Some c ->
            let lpm = c.load_pm_ns and ldr = c.load_dram_ns in
            fun regs ->
              let a = Array.unsafe_get regs x in
              Array.unsafe_set regs dst (Mem.load1 mem a);
              acc.fv <- acc.fv +. (if Layout.is_pm a then lpm else ldr);
              next regs
        | 8, PReg x, None ->
            fun regs ->
              Array.unsafe_set regs dst
                (Mem.load8 mem (Array.unsafe_get regs x));
              next regs
        | 8, PReg x, Some c ->
            let lpm = c.load_pm_ns and ldr = c.load_dram_ns in
            fun regs ->
              let a = Array.unsafe_get regs x in
              Array.unsafe_set regs dst (Mem.load8 mem a);
              acc.fv <- acc.fv +. (if Layout.is_pm a then lpm else ldr);
              next regs
        | _ -> (
            let ld : int -> int =
              match size with
              | 1 -> Mem.load1 mem
              | 2 -> Mem.load2 mem
              | 4 -> Mem.load4 mem
              | 8 -> Mem.load8 mem
              | sz -> fun a -> Mem.load mem ~addr:a ~size:sz
            in
            match (addr, cost) with
            | PReg x, None ->
                fun regs ->
                  Array.unsafe_set regs dst (ld (Array.unsafe_get regs x));
                  next regs
            | PImm a, None ->
                fun regs ->
                  Array.unsafe_set regs dst (ld a);
                  next regs
            | PReg x, Some c ->
                let lpm = c.load_pm_ns and ldr = c.load_dram_ns in
                fun regs ->
                  let a = Array.unsafe_get regs x in
                  Array.unsafe_set regs dst (ld a);
                  acc.fv <- acc.fv +. (if Layout.is_pm a then lpm else ldr);
                  next regs
            | PImm a, Some c ->
                let ns =
                  if Layout.is_pm a then c.load_pm_ns else c.load_dram_ns
                in
                fun regs ->
                  Array.unsafe_set regs dst (ld a);
                  acc.fv <- acc.fv +. ns;
                  next regs))
    | PStore { addr; value; size; nt } -> (
        let iid = i.iid and loc = i.loc in
        let st : int -> int -> unit =
          if tracking then fun a v -> Mem.store mem ~addr:a ~size v
          else
            match size with
            | 1 -> Mem.store1 mem
            | 2 -> Mem.store2 mem
            | 4 -> Mem.store4 mem
            | 8 -> Mem.store8 mem
            | sz -> fun a v -> Mem.store mem ~addr:a ~size:sz v
        in
        let pstore : int -> int -> unit =
          if nt then fun a seq ->
            Pstate.store_nt ps mem ~iid ~loc ~stack:t.frames ~addr:a ~size ~seq
          else
            fun a seq ->
              ignore
                (Pstate.store ps ~iid ~loc ~stack:t.frames ~addr:a ~size ~seq)
        in
        let pm_part : int -> unit =
          if trace then fun a ->
            let seq = next_seq t in
            pstore a seq;
            push_event t
              (Trace.Store
                 {
                   iid;
                   loc;
                   stack = t.frames;
                   addr = a;
                   size;
                   nontemporal = nt;
                   seq;
                 })
          else
            fun a ->
              let seq = next_seq t in
              pstore a seq
        in
        let body : int -> int -> unit =
          match (trace, cost) with
          | false, None ->
              fun a v ->
                st a v;
                if Layout.is_pm a then pm_part a
          | true, None ->
              fun a v ->
                st a v;
                Sitestats.observe stats ~site:iid ~arg:(-1) (classify_arg a);
                if Layout.is_pm a then pm_part a
          | false, Some c ->
              let spm = c.store_pm_ns and sdr = c.store_dram_ns in
              fun a v ->
                st a v;
                if Layout.is_pm a then begin
                  pm_part a;
                  acc.fv <- acc.fv +. spm
                end
                else acc.fv <- acc.fv +. sdr
          | true, Some c ->
              let spm = c.store_pm_ns and sdr = c.store_dram_ns in
              fun a v ->
                st a v;
                Sitestats.observe stats ~site:iid ~arg:(-1) (classify_arg a);
                if Layout.is_pm a then begin
                  pm_part a;
                  acc.fv <- acc.fv +. spm
                end
                else acc.fv <- acc.fv +. sdr
        in
        match (addr, value) with
        | PReg x, PReg y ->
            fun regs ->
              body (Array.unsafe_get regs x) (Array.unsafe_get regs y);
              next regs
        | PReg x, PImm v ->
            fun regs ->
              body (Array.unsafe_get regs x) v;
              next regs
        | PImm a, PReg y ->
            fun regs ->
              body a (Array.unsafe_get regs y);
              next regs
        | PImm a, PImm v ->
            fun regs ->
              body a v;
              next regs)
    | PFlush { kind; addr } -> (
        let iid = i.iid and loc = i.loc in
        let pm_note : int -> unit =
          if trace then fun a ->
            let seq = next_seq t in
            push_event t
              (Trace.Flush
                 {
                   iid;
                   loc;
                   stack = t.frames;
                   kind;
                   line_addr = Layout.line_base a;
                   seq;
                 })
          else fun _ -> ignore (next_seq t)
        in
        let charge_flush : int -> int -> unit =
          match cost with
          | None -> fun _ _ -> ()
          | Some c ->
              let d = c.flush_pm_dirty_ns
              and cl = c.flush_pm_clean_ns
              and v = c.flush_vol_ns in
              fun a moved ->
                acc.fv <-
                  acc.fv
                  +.
                  if Layout.is_pm a then if moved > 0 then d else cl else v
        in
        let body a =
          let moved = Pstate.flush ps mem ~iid ~kind ~addr:a in
          if Layout.is_pm a then pm_note a;
          charge_flush a moved
        in
        match addr with
        | PReg x ->
            fun regs ->
              body (Array.unsafe_get regs x);
              next regs
        | PImm a ->
            fun regs ->
              body a;
              next regs)
    | PFence { kind } ->
        let iid = i.iid and loc = i.loc in
        let note : int -> unit =
          if trace then fun seq ->
            push_event t (Trace.Fence { iid; loc; stack = t.frames; kind; seq })
          else fun _ -> ()
        in
        let charge_fence : int -> unit =
          match cost with
          | None -> fun _ -> ()
          | Some c ->
              let base = c.fence_base_ns and per = c.fence_drain_line_ns in
              fun drained ->
                acc.fv <- acc.fv +. (base +. (float_of_int drained *. per))
        in
        fun regs ->
          let seq = next_seq t in
          let drained = Pstate.fence ps mem ~seq in
          note seq;
          charge_fence drained;
          next regs
    | PCall { dst; callee; args; edge } -> (
        let iid = i.iid and loc = i.loc in
        let with_mark (body : code) : code =
          match cov with
          | None -> body
          | Some cv ->
              fun regs ->
                Coverage.mark cv edge;
                body regs
        in
        let charge_call : unit -> unit =
          match cost with
          | None -> fun () -> ()
          | Some c ->
              let ns = c.call_ns in
              fun () -> acc.fv <- acc.fv +. ns
        in
        match callee with
        | Cintrinsic it ->
            let argk k : code =
              if k < Array.length args then evc args.(k)
              else fun _ -> invalid_arg "index out of bounds"
            in
            let compute : code =
              match it with
              | Ipm_alloc ->
                  let a0 = argk 0 in
                  fun regs -> Mem.alloc_pm mem (a0 regs)
              | Ipm_base -> fun _ -> Layout.pm_base
              | Ipm_size ->
                  let n = cfg.pm_size in
                  fun _ -> n
              | Imalloc ->
                  let a0 = argk 0 in
                  fun regs -> Mem.alloc_vol mem (a0 regs)
              | Ifree -> fun _ -> 0
              | Iemit ->
                  let a0 = argk 0 in
                  fun regs ->
                    t.output_rev <- a0 regs :: t.output_rev;
                    0
              | Iabort -> fun _ -> raise Aborted
            in
            with_mark
              (if dst >= 0 then fun regs ->
                 Array.unsafe_set regs dst (compute regs);
                 charge_call ();
                 next regs
               else
                 fun regs ->
                   ignore (compute regs);
                   charge_call ();
                   next regs)
        | Cfunc callee_fi ->
            let getters = Array.map evc args in
            let nargs = Array.length getters in
            let callee_fname = t.pfuncs.(callee_fi).fname in
            let compiled = t.compiled in
            let pre_trace : int array -> unit =
              if trace then fun argv -> (
                Array.iteri
                  (fun k v ->
                    Sitestats.observe stats ~site:iid ~arg:k (classify_arg v))
                  argv;
                let seq = next_seq t in
                push_event t
                  (Trace.Call
                     {
                       iid;
                       loc;
                       stack = t.frames;
                       callee = callee_fname;
                       arg_classes = Array.to_list (Array.map classify_arg argv);
                       seq;
                     }))
              else fun _ -> ()
            in
            (* The frame is immutable and identical for every execution of
               this site, so one compile-time record is shared. *)
            let frame =
              {
                Trace.func = callee_fname;
                callsite = Some iid;
                callsite_loc = Some loc;
              }
            in
            let body : code =
              if dst >= 0 then
                fun regs ->
                  let argv = Array.make nargs 0 in
                  for k = 0 to nargs - 1 do
                    Array.unsafe_set argv k ((Array.unsafe_get getters k) regs)
                  done;
                  pre_trace argv;
                  t.frames <- frame :: t.frames;
                  charge_call ();
                  let f =
                    match Array.unsafe_get compiled callee_fi with
                    | Some f -> f
                    | None -> get_fn t callee_fi
                  in
                  let r = f argv in
                  t.frames <- List.tl t.frames;
                  Array.unsafe_set regs dst r;
                  next regs
              else
                fun regs ->
                  let argv = Array.make nargs 0 in
                  for k = 0 to nargs - 1 do
                    Array.unsafe_set argv k ((Array.unsafe_get getters k) regs)
                  done;
                  pre_trace argv;
                  t.frames <- frame :: t.frames;
                  charge_call ();
                  let f =
                    match Array.unsafe_get compiled callee_fi with
                    | Some f -> f
                    | None -> get_fn t callee_fi
                  in
                  let r = f argv in
                  ignore r;
                  t.frames <- List.tl t.frames;
                  next regs
            in
            with_mark body)
    | PJmp { target; edge } -> jump edge (slot_of target)
    | PCondbr { cond; if_true; if_false; edge_true; edge_false } -> (
        let ts = slot_of if_true and fs = slot_of if_false in
        match cond with
        | PImm n ->
            if n <> 0 then jump edge_true ts else jump edge_false fs
        | PReg x -> (
            match (cov, cost) with
            | None, None ->
                fun regs ->
                  (Array.unsafe_get blocks
                     (if Array.unsafe_get regs x <> 0 then ts else fs))
                    regs
            | Some cv, None ->
                fun regs ->
                  if Array.unsafe_get regs x <> 0 then begin
                    Coverage.mark cv edge_true;
                    (Array.unsafe_get blocks ts) regs
                  end
                  else begin
                    Coverage.mark cv edge_false;
                    (Array.unsafe_get blocks fs) regs
                  end
            | None, Some c ->
                let ns = c.op_ns in
                fun regs ->
                  acc.fv <- acc.fv +. ns;
                  (Array.unsafe_get blocks
                     (if Array.unsafe_get regs x <> 0 then ts else fs))
                    regs
            | Some cv, Some c ->
                let ns = c.op_ns in
                fun regs ->
                  if Array.unsafe_get regs x <> 0 then begin
                    Coverage.mark cv edge_true;
                    acc.fv <- acc.fv +. ns;
                    (Array.unsafe_get blocks ts) regs
                  end
                  else begin
                    Coverage.mark cv edge_false;
                    acc.fv <- acc.fv +. ns;
                    (Array.unsafe_get blocks fs) regs
                  end))
    | PRet v -> (
        match v with
        | Some (PReg x) -> fun regs -> Array.unsafe_get regs x
        | Some (PImm n) -> fun _ -> n
        | None -> fun _ -> 0)
    | PCrash { edge } -> (
        let siid = Some i.iid and loc = i.loc in
        let body : code =
         fun regs ->
          record_crash_point t ~iid:siid ~loc;
          next regs
        in
        match cov with
        | None -> body
        | Some cv ->
            fun regs ->
              Coverage.mark cv edge;
              body regs)
  in
  let counted (body : code) : code =
   fun regs ->
    t.steps <- t.steps + 1;
    if t.steps > fuel then raise Out_of_fuel;
    body regs
  in
  (* Peephole for the fast chain: a comparison immediately followed by
     the conditional branch on its result — the back edge of almost
     every loop the frontends emit. One closure evaluates the predicate,
     still writes [dst] (a later block may read the flag), and transfers
     directly, saving a closure hop per iteration. The two op_ns charges
     stay separate adds in instruction order, so [cost_ns] is
     bit-identical with the unfused chain and the interpreter; only the
     segment-pre-charged fast chain fuses, so [Out_of_fuel] points are
     untouched. *)
  let fuse_cmp_br (a : pinstr) (b : pinstr) : code option =
    match (a.op, b.op) with
    | ( PBinop { dst; op; lhs; rhs },
        PCondbr { cond = PReg cx; if_true; if_false; edge_true; edge_false } )
      when cx = dst ->
        let test : (int array -> bool) option =
          match (op, lhs, rhs) with
          | Instr.Eq, PReg x, PReg y ->
              Some
                (fun regs ->
                  Array.unsafe_get regs x = Array.unsafe_get regs y)
          | Instr.Eq, PReg x, PImm n ->
              Some (fun regs -> Array.unsafe_get regs x = n)
          | Instr.Ne, PReg x, PReg y ->
              Some
                (fun regs ->
                  Array.unsafe_get regs x <> Array.unsafe_get regs y)
          | Instr.Ne, PReg x, PImm n ->
              Some (fun regs -> Array.unsafe_get regs x <> n)
          | Instr.Lt, PReg x, PReg y ->
              Some
                (fun regs ->
                  Array.unsafe_get regs x < Array.unsafe_get regs y)
          | Instr.Lt, PReg x, PImm n ->
              Some (fun regs -> Array.unsafe_get regs x < n)
          | Instr.Le, PReg x, PReg y ->
              Some
                (fun regs ->
                  Array.unsafe_get regs x <= Array.unsafe_get regs y)
          | Instr.Le, PReg x, PImm n ->
              Some (fun regs -> Array.unsafe_get regs x <= n)
          | Instr.Gt, PReg x, PReg y ->
              Some
                (fun regs ->
                  Array.unsafe_get regs x > Array.unsafe_get regs y)
          | Instr.Gt, PReg x, PImm n ->
              Some (fun regs -> Array.unsafe_get regs x > n)
          | Instr.Ge, PReg x, PReg y ->
              Some
                (fun regs ->
                  Array.unsafe_get regs x >= Array.unsafe_get regs y)
          | Instr.Ge, PReg x, PImm n ->
              Some (fun regs -> Array.unsafe_get regs x >= n)
          | _ -> None
        in
        Option.map
          (fun test ->
            let ts = slot_of if_true and fs = slot_of if_false in
            match (cov, cost) with
            | None, None ->
                fun regs ->
                  if test regs then begin
                    Array.unsafe_set regs dst 1;
                    (Array.unsafe_get blocks ts) regs
                  end
                  else begin
                    Array.unsafe_set regs dst 0;
                    (Array.unsafe_get blocks fs) regs
                  end
            | Some cv, None ->
                fun regs ->
                  if test regs then begin
                    Array.unsafe_set regs dst 1;
                    Coverage.mark cv edge_true;
                    (Array.unsafe_get blocks ts) regs
                  end
                  else begin
                    Array.unsafe_set regs dst 0;
                    Coverage.mark cv edge_false;
                    (Array.unsafe_get blocks fs) regs
                  end
            | None, Some c ->
                let ns = c.op_ns in
                fun regs ->
                  if test regs then begin
                    Array.unsafe_set regs dst 1;
                    acc.fv <- acc.fv +. ns;
                    acc.fv <- acc.fv +. ns;
                    (Array.unsafe_get blocks ts) regs
                  end
                  else begin
                    Array.unsafe_set regs dst 0;
                    acc.fv <- acc.fv +. ns;
                    acc.fv <- acc.fv +. ns;
                    (Array.unsafe_get blocks fs) regs
                  end
            | Some cv, Some c ->
                let ns = c.op_ns in
                fun regs ->
                  if test regs then begin
                    Array.unsafe_set regs dst 1;
                    acc.fv <- acc.fv +. ns;
                    Coverage.mark cv edge_true;
                    acc.fv <- acc.fv +. ns;
                    (Array.unsafe_get blocks ts) regs
                  end
                  else begin
                    Array.unsafe_set regs dst 0;
                    acc.fv <- acc.fv +. ns;
                    Coverage.mark cv edge_false;
                    acc.fv <- acc.fv +. ns;
                    (Array.unsafe_get blocks fs) regs
                  end)
          test
    | _ -> None
  in
  for b = 0 to nblocks - 1 do
    let start = leaders.(b) in
    let stop = if b + 1 < nblocks then leaders.(b + 1) else ncode in
    (* Instructions after the first terminator are unreachable in the
       interpreter too: drop them. *)
    let rec eff j =
      if j >= stop then stop
      else
        match code.(j).op with
        | PJmp _ | PCondbr _ | PRet _ -> j + 1
        | _ -> eff (j + 1)
    in
    let last = eff start in
    let fall : code = fun regs -> (Array.unsafe_get blocks (b + 1)) regs in
    (* Segments: maximal runs that cannot start a nested call (whose steps
       would interleave) or raise Stopped_at_crash. Each segment
       pre-charges its length when fuel allows; otherwise the counted
       chain reproduces the interpreter's exact Out_of_fuel point. *)
    let rec build i : code =
      if i >= last then fall
      else begin
        let rec seg_end j =
          if j >= last then last
          else
            match code.(j).op with
            | PCall _ | PCrash _ -> j + 1
            | _ -> seg_end (j + 1)
        in
        let e = seg_end i in
        let n = e - i in
        let next_seg = build e in
        let rec fast j =
          if j >= e then next_seg
          else if j + 1 < e then
            match fuse_cmp_br code.(j) code.(j + 1) with
            | Some fused -> fused
            | None -> compile_instr code.(j) (fast (j + 1))
          else compile_instr code.(j) (fast (j + 1))
        in
        let rec slow j =
          if j >= e then next_seg
          else counted (compile_instr code.(j) (slow (j + 1)))
        in
        let fastc = fast i in
        let slowc = slow i in
        fun regs ->
          let s = t.steps + n in
          if s <= fuel then begin
            t.steps <- s;
            fastc regs
          end
          else slowc regs
      end
    in
    blocks.(b) <- build start
  done;
  let b0 : code = if nblocks > 0 then blocks.(0) else fell_off in
  let nparams = Array.length pf.pslots in
  let pslots = pf.pslots in
  let nregs = pf.nregs in
  fun args ->
    if Array.length args <> nparams then
      Mem.trap "@%s called with %d arguments (expects %d)" fname
        (Array.length args) nparams;
    let regs = Array.make nregs 0 in
    for i = 0 to nparams - 1 do
      Array.unsafe_set regs (Array.unsafe_get pslots i) (Array.unsafe_get args i)
    done;
    let mark = Mem.stack_mark mem in
    let r = b0 regs in
    (* No Fun.protect: like the interpreter, an escaping exception leaves
       the stack allocator unreleased (the run is over anyway). *)
    Mem.stack_release mem mark;
    r

(** [call t name args] — the host entry point, mirroring {!Interp.call}
    exactly but executing compiled closures. *)
let call (t : Machine.t) name args =
  match Hashtbl.find_opt t.fidx name with
  | None -> Mem.trap "call to undefined function @%s" name
  | Some fi ->
      t.frames <- [ { Trace.func = name; callsite = None; callsite_loc = None } ];
      Fun.protect
        ~finally:(fun () -> t.frames <- [])
        (fun () -> (get_fn t fi) (Array.of_list args))
