(** Tier dispatch: one entry point over {!Interp} and {!Compile}.

    Every consumer that used to call [Interp.call]/[Interp.run] now goes
    through here and gets whichever tier [config.exec] selects; the two
    tiers are bit-identical on every observable (trace, bugs, output,
    [cost_ns], coverage, crash images, seq numbers), so the choice is pure
    performance. [Interp.call] itself always interprets — that is what
    makes it the differential oracle. *)

type tier = Machine.tier

let tier_to_string : tier -> string = function
  | `Interp -> "interp"
  | `Compiled -> "compiled"

let tier_of_string : string -> (tier, string) result = function
  | "interp" -> Ok `Interp
  | "compiled" -> Ok `Compiled
  | s ->
      Error
        (Printf.sprintf "unknown execution tier %S (expected interp|compiled)"
           s)

let call (t : Machine.t) name args =
  match t.Machine.cfg.Machine.exec with
  | `Interp -> Interp.call t name args
  | `Compiled -> Compile.call t name args

(** One-shot convenience mirroring {!Interp.run}, dispatching on
    [config.exec]. *)
let run ?pm_image ?(config = Machine.default_config) prog ~entry ~args =
  let t = Machine.create ?pm_image config prog in
  let ret =
    try Ok (call t entry args) with
    | Machine.Stopped_at_crash -> Error `Stopped_at_crash
    | Machine.Aborted -> Error `Aborted
    | Machine.Out_of_fuel -> Error `Out_of_fuel
  in
  (match ret with Ok _ -> Machine.exit_check t | Error _ -> ());
  (t, ret)
