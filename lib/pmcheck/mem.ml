(** Byte-addressable simulated memory.

    The working PM image is what loads observe; the persisted image is what
    survives a crash. Stores touch only the working image; the persistency
    state machine ({!Pstate}) copies ranges into the persisted image when
    they become durable (flush + fence, or [clflush]).

    With [~track_images:true] the memory additionally maintains, at O(bytes
    changed) per operation, a live {!Imghash} fingerprint of both images
    plus a touched-bytes watermark — the machinery behind the single-pass
    crash sweep's image capture and deduplication ({!Crashsim}). *)

exception Trap of string

let trap fmt = Fmt.kstr (fun m -> raise (Trap m)) fmt

(** Image-capture state, allocated only when tracking is on. Bytes at or
    beyond [hi] are untouched since creation, hence equal to [pm_initial]
    in {e both} images — a snapshot need only copy the [hi]-byte prefix. *)
type tracker = {
  pm_initial : Bytes.t;  (** the creation-time image, shared by snapshots *)
  work_hash : Imghash.t;
  dur_hash : Imghash.t;
  mutable hi : int;  (** touched-bytes watermark (PM offset, exclusive) *)
  old_buf : int array;  (** scratch for a store's pre-image (<= 8 bytes) *)
}

type t = {
  vol : Bytes.t;
  stack : Bytes.t;
  globals : Bytes.t;
  pm : Bytes.t;  (** working image: CPU-cache view of PM *)
  pm_persisted : Bytes.t;  (** durable image: what a crash preserves *)
  mutable vol_brk : int;
  mutable stack_brk : int;
  mutable pm_brk : int;
  global_addrs : (string * int) list;
  track : tracker option;
}

let align8 n = (n + 7) land lnot 7

let create ?(vol_size = 1 lsl 24) ?(stack_size = 1 lsl 22)
    ?(global_size = 1 lsl 20) ?(pm_size = 1 lsl 24) ?pm_image ?(pm_brk = 0)
    ?(track_images = false) (globals : (string * int) list) =
  let pm =
    match pm_image with
    | Some img ->
        if Bytes.length img <> pm_size then
          invalid_arg "Mem.create: pm_image size mismatch";
        Bytes.copy img
    | None -> Bytes.make pm_size '\000'
  in
  let global_addrs, _ =
    List.fold_left
      (fun (acc, off) (name, size) ->
        if off + size > global_size then trap "global segment overflow";
        ((name, Layout.global_base + off) :: acc, off + align8 size))
      ([], 0) globals
  in
  let track =
    if not track_images then None
    else
      (* Both images start equal to the seed, so one scratch fingerprint
         seeds both lanes; an unseeded (all-zero) image costs nothing. *)
      let h =
        match pm_image with None -> Imghash.create () | Some _ -> Imghash.of_bytes pm
      in
      Some
        {
          pm_initial = Bytes.copy pm;
          work_hash = h;
          dur_hash = Imghash.copy h;
          hi = 0;
          old_buf = Array.make 8 0;
        }
  in
  {
    vol = Bytes.make vol_size '\000';
    stack = Bytes.make stack_size '\000';
    globals = Bytes.make global_size '\000';
    pm;
    pm_persisted = Bytes.copy pm;
    vol_brk = 0;
    stack_brk = 0;
    pm_brk;
    global_addrs;
    track;
  }

let global_addr t name =
  match List.assoc_opt name t.global_addrs with
  | Some a -> a
  | None -> trap "unknown global @%s" name

(* Region resolution: returns the backing buffer and the offset within it. *)
let resolve t addr size =
  let check buf base =
    let off = addr - base in
    if off < 0 || off + size > Bytes.length buf then
      trap "out-of-bounds access at 0x%x (size %d)" addr size;
    (buf, off)
  in
  match Layout.region_of_addr addr with
  | Layout.Vol_heap -> check t.vol Layout.vol_base
  | Layout.Stack -> check t.stack Layout.stack_base
  | Layout.Globals -> check t.globals Layout.global_base
  | Layout.Pm -> check t.pm Layout.pm_base
  | Layout.Null_page -> trap "null-page access at 0x%x" addr
  | Layout.Wild -> trap "wild access at 0x%x" addr

let load t ~addr ~size =
  let buf, off = resolve t addr size in
  match size with
  | 1 -> Bytes.get_uint8 buf off
  | 2 -> Bytes.get_uint16_le buf off
  | 4 -> Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF
  | 8 -> Int64.to_int (Bytes.get_int64_le buf off)
  | _ -> trap "bad load size %d" size

let write_value buf off size v =
  match size with
  | 1 -> Bytes.set_uint8 buf off (v land 0xFF)
  | 2 -> Bytes.set_uint16_le buf off (v land 0xFFFF)
  | 4 -> Bytes.set_int32_le buf off (Int32.of_int v)
  | 8 ->
      (* PMIR is a 63-bit machine (OCaml ints). Mask the sign extension so
         byte 7 of a stored word round-trips through byte-wise loads. *)
      Bytes.set_int64_le buf off
        (Int64.logand (Int64.of_int v) 0x7FFF_FFFF_FFFF_FFFFL)
  | _ -> trap "bad store size %d" size

let store t ~addr ~size v =
  let buf, off = resolve t addr size in
  match t.track with
  | Some tr when Layout.is_pm addr ->
      for k = 0 to size - 1 do
        tr.old_buf.(k) <- Bytes.get_uint8 buf (off + k)
      done;
      write_value buf off size v;
      for k = 0 to size - 1 do
        Imghash.update tr.work_hash ~off:(off + k) ~old_byte:tr.old_buf.(k)
          ~new_byte:(Bytes.get_uint8 buf (off + k))
      done;
      if off + size > tr.hi then tr.hi <- off + size
  | _ -> write_value buf off size v

(* Size-specialized accessors for the compiled execution tier: access size
   (and, for stores, whether image tracking is on) is fixed when a closure
   is compiled, so the per-access size dispatch and the (buf, off) tuple of
   [resolve] disappear. Bounds checks and trap messages are identical to
   [load]/[store]; the checked access is then performed with the unsafe
   primitives (one bounds check instead of two). The region base is always
   the address's top nibble, so the in-buffer offset is a mask away.
   [@inline] matters: without flambda these are only inlined into the
   compiled tier's closures when explicitly requested. *)

external unsafe_get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_get32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_set32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] buf_for t addr =
  match Layout.region_of_addr addr with
  | Layout.Vol_heap -> t.vol
  | Layout.Stack -> t.stack
  | Layout.Globals -> t.globals
  | Layout.Pm -> t.pm
  | Layout.Null_page -> trap "null-page access at 0x%x" addr
  | Layout.Wild -> trap "wild access at 0x%x" addr

let[@inline] load1 t addr =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 1 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 1;
  Char.code (Bytes.unsafe_get buf off)

let[@inline] load2 t addr =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 2 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 2;
  unsafe_get16 buf off

let[@inline] load4 t addr =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 4 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 4;
  Int32.to_int (unsafe_get32 buf off) land 0xFFFFFFFF

let[@inline] load8 t addr =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 8 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 8;
  Int64.to_int (unsafe_get64 buf off)

(* The [storeN] variants bypass the image tracker and must only be used
   when [tracking t] is false (the compiled tier checks once, at closure
   compile time). *)

let[@inline] store1 t addr v =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 1 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 1;
  Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xFF))

let[@inline] store2 t addr v =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 2 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 2;
  unsafe_set16 buf off (v land 0xFFFF)

let[@inline] store4 t addr v =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 4 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 4;
  unsafe_set32 buf off (Int32.of_int v)

let[@inline] store8 t addr v =
  let buf = buf_for t addr in
  let off = addr land 0x0FFF_FFFF in
  if off + 8 > Bytes.length buf then
    trap "out-of-bounds access at 0x%x (size %d)" addr 8;
  unsafe_set64 buf off
    (Int64.logand (Int64.of_int v) 0x7FFF_FFFF_FFFF_FFFFL)

(* Copy [len] working/snapshot bytes into the persisted image at [off],
   keeping the durable fingerprint current byte by byte. *)
let persist_tracked tr dst ~off ~len ~byte_at =
  for k = off to off + len - 1 do
    let old_byte = Bytes.get_uint8 dst k in
    let new_byte = byte_at k in
    if old_byte <> new_byte then begin
      Imghash.update tr.dur_hash ~off:k ~old_byte ~new_byte;
      Bytes.set_uint8 dst k new_byte
    end
  done;
  if off + len > tr.hi then tr.hi <- off + len

(** [persist_range t ~addr ~size] copies working PM content into the
    persisted image (called by {!Pstate} when a range becomes durable). *)
let persist_range t ~addr ~size =
  let off = addr - Layout.pm_base in
  if off < 0 || off + size > Bytes.length t.pm then
    trap "persist_range outside PM at 0x%x" addr;
  match t.track with
  | Some tr ->
      persist_tracked tr t.pm_persisted ~off ~len:size ~byte_at:(fun k ->
          Bytes.get_uint8 t.pm k)
  | None -> Bytes.blit t.pm off t.pm_persisted off size

(** [persist_string t ~addr s] makes a flush-time snapshot durable: the
    snapshot bytes (not the current working bytes) are what the flush
    wrote back. {!Pstate} calls this when a fence drains the write-pending
    queue. *)
let persist_string t ~addr s =
  let off = addr - Layout.pm_base in
  let len = String.length s in
  if off < 0 || off + len > Bytes.length t.pm_persisted then
    trap "persist_string outside PM at 0x%x" addr;
  match t.track with
  | Some tr ->
      persist_tracked tr t.pm_persisted ~off ~len ~byte_at:(fun k ->
          Char.code (String.unsafe_get s (k - off)))
  | None -> Bytes.blit_string s 0 t.pm_persisted off len

(** Snapshot of the durable image: the post-crash PM contents. *)
let crash_image t = Bytes.copy t.pm_persisted

(** Snapshot of the working image (i.e. assuming everything reached PM). *)
let working_image t = Bytes.copy t.pm

(* Image tracking ---------------------------------------------------------- *)

let tracker t =
  match t.track with
  | Some tr -> tr
  | None -> trap "image tracking is off (create with ~track_images:true)"

let tracking t = t.track <> None

(** Live fingerprint of the working image. Requires tracking. *)
let working_digest t = Imghash.digest (tracker t).work_hash

(** Live fingerprint of the durable image. Requires tracking. *)
let durable_digest t = Imghash.digest (tracker t).dur_hash

(** A compact captured image: the touched prefix plus a shared reference
    to the creation-time image for the untouched tail. Copying costs
    O(touched bytes), not O(pm size). *)
type pm_snapshot = { s_prefix : Bytes.t; s_base : Bytes.t }

let snapshot_durable t =
  let tr = tracker t in
  { s_prefix = Bytes.sub t.pm_persisted 0 tr.hi; s_base = tr.pm_initial }

let snapshot_working t =
  let tr = tracker t in
  { s_prefix = Bytes.sub t.pm 0 tr.hi; s_base = tr.pm_initial }

(** Materialize a snapshot as a full PM image (for {!create}'s
    [?pm_image]). *)
let snapshot_to_image s =
  let img = Bytes.copy s.s_base in
  Bytes.blit s.s_prefix 0 img 0 (Bytes.length s.s_prefix);
  img

(* Allocators ------------------------------------------------------------- *)

let alloc_vol t size =
  let size = align8 (max size 1) in
  if t.vol_brk + size > Bytes.length t.vol then trap "volatile heap exhausted";
  let addr = Layout.vol_base + t.vol_brk in
  t.vol_brk <- t.vol_brk + size;
  addr

(** PM allocations are cache-line aligned, as PMDK's allocator guarantees;
    this keeps distinct objects from sharing flush granules. *)
let alloc_pm t size =
  let size = (max size 1 + 63) land lnot 63 in
  if t.pm_brk + size > Bytes.length t.pm then trap "persistent heap exhausted";
  let addr = Layout.pm_base + t.pm_brk in
  t.pm_brk <- t.pm_brk + size;
  addr

let stack_mark t = t.stack_brk

let stack_release t mark = t.stack_brk <- mark

let alloc_stack t size =
  let size = align8 (max size 1) in
  if t.stack_brk + size > Bytes.length t.stack then trap "stack overflow";
  let addr = Layout.stack_base + t.stack_brk in
  t.stack_brk <- t.stack_brk + size;
  addr

(* Host-side convenience accessors ---------------------------------------- *)

let write_string t ~addr s =
  String.iteri (fun i c -> store t ~addr:(addr + i) ~size:1 (Char.code c)) s

let read_string t ~addr ~len =
  String.init len (fun i -> Char.chr (load t ~addr:(addr + i) ~size:1 land 0xFF))
