(* Edge-coverage bitmap. One byte per slot: profligate with space (64 KiB)
   but branch-free to set, and [count] stays O(1) via a running total. *)

type t = { bits : Bytes.t; mutable set : int }

let map_size = 1 lsl 16

let create () = { bits = Bytes.make map_size '\000'; set = 0 }

let reset t =
  Bytes.fill t.bits 0 map_size '\000';
  t.set <- 0

(* FNV-1a, 64-bit, reduced to the map size. Deliberately not
   [Hashtbl.hash]: edge indices must be stable across runs, processes and
   compiler versions — they name corpus coverage on disk. *)
let fnv_prime = 0x100000001b3

(* The canonical 64-bit offset basis truncated to OCaml's 63-bit int. *)
let fnv_basis = 0x0bf29ce484222325

let fnv_str h s =
  let h = ref h in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land max_int)
    s;
  !h

let edge ~func ~block ~dest =
  let h = fnv_str fnv_basis func in
  let h = fnv_str (h lxor 0xff) block in
  let h = fnv_str (h lxor 0xffff) dest in
  h land (map_size - 1)

let mark t i =
  if Bytes.unsafe_get t.bits i = '\000' then begin
    Bytes.unsafe_set t.bits i '\001';
    t.set <- t.set + 1
  end

let mem t i = Bytes.get t.bits i <> '\000'
let count t = t.set

let to_list t =
  let acc = ref [] in
  for i = map_size - 1 downto 0 do
    if Bytes.unsafe_get t.bits i <> '\000' then acc := i :: !acc
  done;
  !acc

let add ~into is =
  List.fold_left
    (fun fresh i ->
      if mem into i then fresh
      else begin
        mark into i;
        fresh + 1
      end)
    0 is

let merge ~into t = add ~into (to_list t)
