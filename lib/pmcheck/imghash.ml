(** Incremental 128-bit PM-image fingerprints.

    A Zobrist-style hash: the digest of an image is the XOR, over every
    byte offset, of a mixed value derived from [(offset, byte)]. XOR makes
    the digest order-independent and incrementally maintainable — when a
    byte changes, XOR the old contribution out and the new one in — so
    {!Mem} can keep a live fingerprint of both PM images at O(bytes
    changed) per store/flush/fence instead of rehashing megabytes at every
    crash point.

    Zero bytes contribute nothing, so a fresh all-zero image digests to
    {!zero_digest} without being scanned, and seeding from a nonzero image
    costs one pass over its nonzero bytes only.

    Two independently-mixed 64-bit lanes give a 128-bit digest; with the
    image counts a crash sweep sees (thousands, not 2^64), an accidental
    collision is beyond astronomically unlikely, which is what makes
    digest-keyed recovery memoization sound (see DESIGN.md §7b). *)

type digest = { h1 : int64; h2 : int64 }

let zero_digest = { h1 = 0L; h2 = 0L }
let equal_digest a b = Int64.equal a.h1 b.h1 && Int64.equal a.h2 b.h2

let pp_digest ppf d = Fmt.pf ppf "%016Lx%016Lx" d.h1 d.h2

type t = { mutable a : int64; mutable b : int64 }

let create () = { a = 0L; b = 0L }
let copy t = { a = t.a; b = t.b }
let reset t = t.a <- 0L; t.b <- 0L

(* splitmix64: a full-period mixer, the standard seed expander. *)
let splitmix64 seed =
  let open Int64 in
  let z = add seed 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* The murmur3 finalizer remixes lane 1 into an independent lane 2. *)
let remix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  logxor z (shift_right_logical z 33)

(* Contribution of byte value [byte] at [off]; (0, 0) for zero bytes by
   construction, never for nonzero ones (splitmix has no fixed point at
   the offsets in use). *)
let lanes ~off ~byte =
  if byte = 0 then (0L, 0L)
  else
    let z = splitmix64 (Int64.of_int ((off * 256) lor byte)) in
    (z, remix z)

(** [update t ~off ~old_byte ~new_byte] re-fingerprints one byte change. *)
let update t ~off ~old_byte ~new_byte =
  if old_byte <> new_byte then begin
    let oa, ob = lanes ~off ~byte:old_byte in
    let na, nb = lanes ~off ~byte:new_byte in
    t.a <- Int64.logxor t.a (Int64.logxor oa na);
    t.b <- Int64.logxor t.b (Int64.logxor ob nb)
  end

(** [of_bytes img] fingerprints an image from scratch (used to seed the
    tracker from a restart image, and by tests as the ground truth the
    incremental hash must agree with). *)
let of_bytes img =
  let t = create () in
  for off = 0 to Bytes.length img - 1 do
    let byte = Bytes.get_uint8 img off in
    if byte <> 0 then begin
      let a, b = lanes ~off ~byte in
      t.a <- Int64.logxor t.a a;
      t.b <- Int64.logxor t.b b
    end
  done;
  t

let digest t = { h1 = t.a; h2 = t.b }

module Digest_key = struct
  type t = digest

  let equal = equal_digest
  let hash d = Int64.to_int (Int64.logxor d.h1 (Int64.shift_right_logical d.h2 1))
end
