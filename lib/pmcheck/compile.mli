(** The compiled execution tier: closure-threaded PMIR.

    Prepared basic blocks become chains of OCaml closures — operand
    shapes, access sizes and the trace/coverage/cost/image hooks are
    specialized when the closure is built, registers live in a
    preallocated [int array], and branch targets are pre-resolved block
    slots. Functions compile lazily, memoized per machine.

    The contract with {!Interp} is bit-identical observables: trace
    events (including seq numbers), bugs, output, [cost_ns], coverage,
    crash images and crash-point counts. [steps] agrees on every normal,
    out-of-fuel, aborted and stopped-at-crash path (it may overshoot by a
    segment tail only when a {!Mem.Trap} aborts the run). *)

(** [call t name args] invokes a function from the host through the
    compiled tier. Same exceptions and accumulation semantics as
    {!Interp.call}. *)
val call : Machine.t -> string -> int list -> int
