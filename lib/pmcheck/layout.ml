(** The simulated address space.

    Four disjoint regions, distinguishable by the top nibble of an address,
    so classifying a pointer as persistent or volatile is a shift — the
    same cheap test pmemcheck performs against the mmap'd pool range. *)

let cache_line = 64

let vol_base = 0x1000_0000
let stack_base = 0x2000_0000
let global_base = 0x3000_0000
let pm_base = 0x4000_0000

type region = Null_page | Vol_heap | Stack | Globals | Pm | Wild

let region_of_addr addr =
  if addr >= 0 && addr < 0x1000 then Null_page
  else
    match addr lsr 28 with
    | 1 -> Vol_heap
    | 2 -> Stack
    | 3 -> Globals
    | 4 -> Pm
    | _ -> Wild

let[@inline] is_pm addr = addr lsr 28 = 4

(** A volatile pointer: a valid address outside persistent memory. Used to
    classify call arguments for the Trace-AA heuristic — integers that are
    not addresses at all fall in neither class. *)
let is_volatile_ptr addr =
  match region_of_addr addr with
  | Vol_heap | Stack | Globals -> true
  | Null_page | Pm | Wild -> false

let line_of_addr addr = addr / cache_line
let line_base addr = addr land lnot (cache_line - 1)
