(** The persistency state machine (paper §4.2 definitions).

    Tracks, per PM store, whether the stored range is still {e dirty} in
    the CPU cache, {e pending} (covered by a weakly-ordered flush that no
    fence has ordered yet), or durable. Durable ranges are copied into the
    persisted image, so crash simulation sees exactly the bytes a real
    crash would preserve.

    Deterministic-pessimistic model: lines are never spontaneously
    evicted, so "may still be volatile at the crash" becomes "is volatile
    at the crash" — the same worst-case stance pmemcheck takes. *)

open Hippo_pmir

type state = Dirty | Pending

type record = {
  iid : Iid.t;
  loc : Loc.t;
  stack : Trace.stack;
  addr : int;
  size : int;
  seq : int;  (** global event sequence number of the store *)
  mutable state : state;
  mutable snapshot : string;  (** bytes captured at flush time *)
  mutable flushed_by : Iid.t option;  (** the flush that made it pending *)
}

type t = {
  lines : (int, record list ref) Hashtbl.t;
  mutable pending : record list;
  mutable last_fence_seq : int;
  mutable flushes_total : int;
  mutable flushes_clean : int;  (** flushes that moved no dirty data *)
  mutable fences_total : int;
  mutable stores_pm_total : int;
}

val create : unit -> t

(** Record a PM store. Overlapping older {e dirty} records are superseded;
    pending records (write-backs already in flight) are left alone. *)
val store :
  t ->
  iid:Iid.t ->
  loc:Loc.t ->
  stack:Trace.stack ->
  addr:int ->
  size:int ->
  seq:int ->
  record

(** Nontemporal stores bypass the cache into the write-pending queue:
    durable after the next fence, without any flush. *)
val store_nt :
  t ->
  Mem.t ->
  iid:Iid.t ->
  loc:Loc.t ->
  stack:Trace.stack ->
  addr:int ->
  size:int ->
  seq:int ->
  unit

(** Flush the cache line containing [addr]. Dirty records intersecting the
    line capture their current working bytes and become pending ([Clwb],
    [Clflushopt]) or immediately durable ([Clflush]). Returns the number
    of records transitioned. No effect outside PM. *)
val flush : t -> Mem.t -> iid:Iid.t -> kind:Instr.flush_kind -> addr:int -> int

(** A fence makes every pending record durable (committing the
    flush-time snapshots). Returns the number of {e distinct cache lines}
    drained — the write-pending-queue work a real sfence waits for. *)
val fence : t -> Mem.t -> seq:int -> int

(** All still-unpersisted records, classified per §4.2: [Dirty] with a
    later fence = missing-flush; [Dirty] with no later fence =
    missing-flush&fence; [Pending] = missing-fence. Sorted by source
    location. *)
val unpersisted_bugs : t -> crash:Report.crash_info -> Report.bug list

val unpersisted_count : t -> int
val pending_count : t -> int

(** {2 Fault-injection hooks (the simulation harness)}

    Both entry points preserve the machine's physical ordering rules —
    no injected schedule can fabricate an image real hardware could not
    produce. *)

(** Every still-dirty record, oldest store first. *)
val dirty_records : t -> record list

(** In-flight (flushed, unfenced) records, oldest first. *)
val pending_records : t -> record list

(** [commit_chosen t mem chosen] makes a chosen subset of in-flight
    write-backs durable — a write-pending queue that drained some
    entries before power loss. The chosen set is closed under "older
    pending record sharing a cache line" and committed oldest-first, so
    injected reordering can pick {e which lines} drained but can never
    violate the per-line store-order (PR 3 clflush-drain) invariant.
    Returns the number of records made durable. *)
val commit_chosen : t -> Mem.t -> (record -> bool) -> int

(** [tear_dirty mem r ~keep_word] partially evicts a dirty record: each
    8-byte-aligned word [w] of its range with [keep_word w] true has its
    working bytes copied into the durable image (8-byte store
    atomicity). The record stays dirty. *)
val tear_dirty : Mem.t -> record -> keep_word:(int -> bool) -> unit
