(** Crash simulation: demonstrates that reported durability bugs are real
    (some crash leaves the application unrecoverable) and that repaired
    programs are crash consistent.

    A scenario runs a workload, stops it at its [n]-th crash point, takes
    the durable PM image, restarts the program on that image and runs a
    recovery checker function (returning nonzero when the recovered state
    satisfies the application's invariant).

    Two images are checked per crash point: the pessimistic image (only
    explicitly persisted data survived) and the lucky image (every cached
    line happened to be evicted before the crash — the case that makes
    durability bugs so hard to observe in testing). A bug is
    {e demonstrated} when the lucky image recovers but the pessimistic one
    does not.

    Sweeps have two strategies. [`Single_pass] (the default) runs the
    workload once with image tracking on, captures a fingerprint pair per
    crash point plus an O(touched-bytes) snapshot per {e distinct} image,
    and runs recovery once per distinct image not already in the memo
    table — O(workload + k·recovery) for [k] distinct images. [`Replay]
    re-executes the workload prefix per crash point (O(n²)) and is kept
    for differential testing. Both produce byte-identical verdict lists
    at every [jobs] setting. Dedup is sound because recovery is a pure
    function of the crash image (DESIGN.md §7b). *)

type verdict = {
  crash_index : int;
  pessimistic_ok : bool;  (** recovery succeeded on the durable image *)
  lucky_ok : bool;  (** recovery succeeded on the working image *)
}

val consistent : verdict -> bool

type strategy = [ `Single_pass | `Replay ]

type stats = {
  crash_points : int;
  distinct_pessimistic : int;  (** distinct durable images over the sweep *)
  distinct_lucky : int;  (** distinct working images over the sweep *)
  distinct_images : int;  (** distinct images overall (the two can meet) *)
  recovery_runs : int;  (** checker executions actually performed *)
  memo_hits : int;  (** image checks answered without running recovery *)
}

(** Memoized recovery verdicts keyed by (program, checker, checker args,
    image fingerprint). Pass one table to several single-pass sweeps —
    e.g. the original and repaired program in {!Hippo_engine.Verify}, or
    every case a corpus worker domain processes — and repeated durable
    images cost nothing. Reuse assumes the sweeps share an interpreter
    config. Not domain-safe: share per domain and merge statistics
    afterwards ({!Memo.merge_stats}). *)
module Memo : sig
  type t

  val create : unit -> t
  val hits : t -> int
  val misses : t -> int

  (** Number of memoized (image, checker) verdicts. *)
  val size : t -> int

  (** Fold [m]'s hit/miss counters into [into] (read-only reporting merge
      of per-domain tables). *)
  val merge_stats : into:t -> t -> unit
end

(** [check_crash prog ~setup ~checker ~checker_args ~crash_index] runs the
    host-call list [setup], stopping at the given crash point, then
    recovers both images with [checker]. Raises [Invalid_argument] when
    the workload has fewer crash points. This is the [`Replay] primitive. *)
val check_crash :
  ?config:Interp.config ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  crash_index:int ->
  verdict

(** Count the crash points a workload passes through — one uninstrumented
    run reading the interpreter's crash-point counter; no trace is built. *)
val count_crash_points :
  ?config:Interp.config ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  int

(** Digest of the printed program — the program component of memo keys. *)
val program_sig : Hippo_pmir.Program.t -> string

(** Check every crash point of the workload, in crash-point order, and
    report dedup statistics alongside the verdicts. [jobs > 1] (default 1)
    fans recovery runs (single-pass) or whole scenarios (replay) out over
    a domain pool; submission-order collection keeps the verdict list
    identical to the serial sweep. [memo] (single-pass only) carries
    recovery verdicts across sweeps; omitted, each sweep memoizes
    privately (within-sweep dedup still applies). [memo_sig] overrides
    the program component of the memo key; pass one signature for two
    programs only when their checkers are known equivalent on every image
    (original vs harm-free repair). *)
val sweep_with_stats :
  ?config:Interp.config ->
  ?jobs:int ->
  ?strategy:strategy ->
  ?memo:Memo.t ->
  ?memo_sig:string ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  verdict list * stats

(** {!sweep_with_stats} without the statistics. *)
val sweep :
  ?config:Interp.config ->
  ?jobs:int ->
  ?strategy:strategy ->
  ?memo:Memo.t ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  verdict list

(** A program is crash consistent for a workload when recovery succeeds on
    the pessimistic image of every crash point. *)
val crash_consistent :
  ?config:Interp.config ->
  ?jobs:int ->
  ?strategy:strategy ->
  ?memo:Memo.t ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  bool
