(** Crash simulation: demonstrates that reported durability bugs are real
    (some crash leaves the application unrecoverable) and that repaired
    programs are crash consistent.

    A scenario runs a workload, stops it at its [n]-th crash point, takes
    the durable PM image, restarts the program on that image and runs a
    recovery checker function (returning nonzero when the recovered state
    satisfies the application's invariant).

    Two images are checked per crash point: the pessimistic image (only
    explicitly persisted data survived) and the lucky image (every cached
    line happened to be evicted before the crash — the case that makes
    durability bugs so hard to observe in testing). A bug is
    {e demonstrated} when the lucky image recovers but the pessimistic one
    does not. *)

type verdict = {
  crash_index : int;
  pessimistic_ok : bool;  (** recovery succeeded on the durable image *)
  lucky_ok : bool;  (** recovery succeeded on the working image *)
}

val consistent : verdict -> bool

(** [check_crash prog ~setup ~checker ~checker_args ~crash_index] runs the
    host-call list [setup], stopping at the given crash point, then
    recovers both images with [checker]. Raises [Invalid_argument] when
    the workload has fewer crash points. *)
val check_crash :
  ?config:Interp.config ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  crash_index:int ->
  verdict

(** Count the crash points a workload passes through. *)
val count_crash_points :
  ?config:Interp.config ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  int

(** Check every crash point of the workload, in crash-point order. Each
    crash point is an independent scenario on its own interpreter, so
    [jobs > 1] (default 1) fans them out over a domain pool; submission
    -order collection keeps the verdict list identical to the serial
    sweep. *)
val sweep :
  ?config:Interp.config ->
  ?jobs:int ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  verdict list

(** A program is crash consistent for a workload when recovery succeeds on
    the pessimistic image of every crash point. *)
val crash_consistent :
  ?config:Interp.config ->
  ?jobs:int ->
  Hippo_pmir.Program.t ->
  setup:(string * int list) list ->
  checker:string ->
  checker_args:int list ->
  bool
