(** Randomized well-typed PMIR generator (the fuzzer's seed source).

    Promoted from the PR 3 test-local generator so the fuzzer, the qcheck
    suites and the benchmarks share one program family. Programs mix PM
    stores, flushes, fences, volatile traffic, interprocedural persist
    helpers and data-dependent branches ([S_guard]).

    Three families:
    - {!arb_bug_free}: every PM store is covered by a
      store → flush → fence chain before any crash point or exit, so
      both detectors must report zero bugs;
    - {!arb_mixed}: the full alphabet (bare stores, stray flushes and
      fences) — repair-pipeline inputs that may or may not harbor bugs;
    - {!arb_crash}: slot/shadow pairs with explicit crash points and an
      in-program recovery checker ({!checker_name}) — crash-sweep
      subjects. *)

open Hippo_pmir

(** Number of PM slots; each lives on its own cache line. *)
val slots : int

val slot_off : int -> int

(** Byte offset of slot [k]'s shadow copy (checker mode). *)
val shadow_off : int -> int

(** Name of the generated recovery-checker function ([check_inv]). *)
val checker_name : string

type step =
  | S_persist of int * int  (** store slot <- value; flush; fence *)
  | S_persist_helper of int * int  (** the same chain behind a call *)
  | S_batch of (int * int) list  (** stores, flush each, one fence *)
  | S_vol_store of int * int
  | S_emit of int
  | S_guard of int * int
      (** load slot, branch on its value, emit 1 or 0 — control flow with
          no durability operations (coverage-map food) *)
  | S_store_raw of int * int
      (** bare PM store: a durability bug unless a later step happens to
          persist the slot *)
  | S_flush of int
  | S_fence
  | S_pair of int * int  (** slot and shadow both written and persisted *)
  | S_half of int * int
      (** slot persisted, shadow left unflushed: the durable image breaks
          the recovery invariant *)
  | S_crash  (** explicit crash point *)

val gen_steps : step list QCheck.Gen.t
val gen_mixed_steps : step list QCheck.Gen.t
val gen_crash_steps : step list QCheck.Gen.t

(** [program_of_steps ?checker steps] builds and validates the program;
    [~checker:true] adds shadow slots and the {!checker_name} function
    (post-restart invariant: every slot equals its shadow). *)
val program_of_steps : ?checker:bool -> step list -> Program.t

val arb_bug_free : Program.t QCheck.arbitrary
val arb_mixed : Program.t QCheck.arbitrary
val arb_crash : Program.t QCheck.arbitrary

(** Seeded one-shot draws (the fuzzer's per-slot RNG streams). *)
val random_mixed : Random.State.t -> Program.t

val random_crash : Random.State.t -> Program.t

(** The program defines the recovery checker (crash family). *)
val has_checker : Program.t -> bool

(** Run [main] — the workload every generated program is driven by. *)
val workload : Hippo_pmcheck.Interp.t -> unit

(** The host-call list matching {!workload}, for crash sweeps. *)
val setup : (string * int list) list
