open Hippo_pmir
open Hippo_pmcheck
module Driver = Hippo_core.Driver
module Verify = Hippo_engine.Verify
module Checker = Hippo_staticcheck.Checker
module Adapter = Hippo_staticcheck.Adapter

type violation = { oracle : string; detail : string }

type outcome = {
  edges : int list;
  verdict : string;
  violations : violation list;
  memo_hits : int;
  memo_misses : int;
}

(* Generated programs touch at most a few hundred PM bytes; the default
   config would zero a 16 MiB arena per execution. *)
let interp_config =
  {
    Interp.default_config with
    fuel = 2_000_000;
    vol_size = 1 lsl 12;
    stack_size = 1 lsl 12;
    global_size = 1 lsl 8;
    pm_size = 1 lsl 12;
  }

let pp_bugs ppf bugs =
  List.iter (fun b -> Fmt.pf ppf "  %a@." Report.pp_bug b) bugs

let bucket n = if n = 0 then "0" else if n = 1 then "1" else if n <= 3 then "few" else "many"

(* Blocks observed to execute, recovered from the hashed edge set: every
   potential (func, block, dest) edge of the program is re-hashed and
   tested for membership in the run's marked set. Hash collisions can
   only add blocks, which is harmless for mutation biasing. *)
let hot_blocks prog edges =
  let marked = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace marked e ()) edges;
  let hot = Hashtbl.create 64 in
  let add f b = Hashtbl.replace hot (f, b) () in
  let entry_label fn =
    match Program.find prog fn with
    | Some f -> (
        match Func.blocks f with
        | b :: _ -> Some b.Func.label
        | [] -> None)
    | None -> None
  in
  (match entry_label "main" with Some l -> add "main" l | None -> ());
  List.iter
    (fun f ->
      let fname = Func.name f in
      List.iter
        (fun (b : Func.block) ->
          let block = b.Func.label in
          let mem dest = Hashtbl.mem marked (Coverage.edge ~func:fname ~block ~dest) in
          let taken dest =
            add fname block;
            add fname dest
          in
          List.iter
            (fun i ->
              match Instr.op i with
              | Instr.Br { target } -> if mem target then taken target
              | Instr.Condbr { if_true; if_false; _ } ->
                  if mem if_true then taken if_true;
                  if mem if_false then taken if_false
              | Instr.Call { callee; _ } ->
                  if mem callee then begin
                    add fname block;
                    match entry_label callee with
                    | Some l -> add callee l
                    | None -> ()
                  end
              | Instr.Crash -> if mem "!crash" then add fname block
              | _ -> ())
            b.instrs)
        (Func.blocks f))
    (Program.funcs prog);
  Hashtbl.fold (fun k () acc -> k :: acc) hot [] |> List.sort compare

let coverage_edges ?(exec = interp_config.Interp.exec) prog =
  let cov = Coverage.create () in
  let config = { interp_config with coverage = Some cov; trace = false; exec } in
  let _t, _ret = Exec.run ~config prog ~entry:"main" ~args:[] in
  Coverage.to_list cov

let pp_verdicts ppf vs =
  List.iter
    (fun (v : Crashsim.verdict) ->
      Fmt.pf ppf "  crash %d: pessimistic=%b lucky=%b@." v.crash_index
        v.pessimistic_ok v.lucky_ok)
    vs

let evaluate_exn ?(exec = interp_config.Interp.exec) prog =
  let interp_config = { interp_config with Interp.exec } in
  let violations = ref [] in
  let flag oracle detail = violations := { oracle; detail } :: !violations in
  (* dynamic run: coverage + bug reports. Bug collection does not need the
     event trace (seq numbers advance either way), so leave it off. *)
  let cov = Coverage.create () in
  let config = { interp_config with coverage = Some cov; trace = false } in
  let t, _ret = Exec.run ~config prog ~entry:"main" ~args:[] in
  let dynamic = Interp.bugs t in
  let edges = Coverage.to_list cov in
  (* O1: every dynamic site must be covered by a static report *)
  let static_ = (Driver.check_static ~entries:[ "main" ] prog).Checker.bugs in
  let cmp = Adapter.compare_reports ~static_ ~dynamic in
  if cmp.Adapter.missed <> [] then
    flag "static_dynamic"
      (Fmt.str "dynamic bugs with no covering static report:@.%a" pp_bugs
         cmp.Adapter.missed);
  (* O2: repair round-trip, when there is anything to repair *)
  let repaired =
    if dynamic = [] then None
    else begin
      let r =
        Driver.repair
          ~options:{ Driver.default_options with jobs = 1 }
          ~name:"fuzz" ~workload:Gen.workload ~config:interp_config prog
      in
      let v = r.Driver.verification in
      let ok = Verify.effective v && Verify.harm_free v in
      if not ok then
        flag "repair_roundtrip" (Fmt.str "%a" Verify.pp v);
      Some (r.Driver.repaired, ok)
    end
  in
  (* crash-sweep oracles (crash family only) *)
  let memo = Crashsim.Memo.create () in
  let crash_component =
    if not (Gen.has_checker prog) then "-"
    else begin
      let sweep ?memo_sig p =
        Crashsim.sweep_with_stats ~config:interp_config ~jobs:1
          ~strategy:`Single_pass ~memo ?memo_sig p ~setup:Gen.setup
          ~checker:Gen.checker_name ~checker_args:[]
      in
      let verdicts, _stats = sweep prog in
      (* O3a: single-pass and replay sweeps must agree *)
      let replay =
        Crashsim.sweep ~config:interp_config ~jobs:1 ~strategy:`Replay prog
          ~setup:Gen.setup ~checker:Gen.checker_name ~checker_args:[]
      in
      if verdicts <> replay then
        flag "sweep_differential"
          (Fmt.str "single-pass:@.%a@.replay:@.%a" pp_verdicts verdicts
             pp_verdicts replay);
      (* O3b: the repair must not regress any recovery verdict *)
      (match repaired with
      | Some (rep, harm_free) when verdicts <> [] ->
          let memo_sig =
            (* sharing the memo across programs is sound only when the
               repair preserved working-image semantics *)
            if harm_free then Some (Crashsim.program_sig prog) else None
          in
          let rep_verdicts, _ = sweep ?memo_sig rep in
          (* harm = a crash point where every post-crash image recovered
             before the repair but some image fails after it. A point
             that was already inconsistent (some original image failed)
             is fair game: inserting a flush legitimately shifts which
             images occur, and a durability repair cannot be asked to
             fix a pre-existing atomicity bug. *)
          let consistent (v : Crashsim.verdict) =
            v.pessimistic_ok && v.lucky_ok
          in
          let regressed =
            List.length rep_verdicts <> List.length verdicts
            || List.exists2
                 (fun o r -> consistent o && not (consistent r))
                 verdicts rep_verdicts
          in
          if regressed then
            flag "crash_harm"
              (Fmt.str "original:@.%a@.repaired:@.%a" pp_verdicts verdicts
                 pp_verdicts rep_verdicts)
      | _ -> ());
      if verdicts = [] then "nocrash"
      else if List.for_all Crashsim.consistent verdicts then "cc"
      else "incc"
    end
  in
  let verdict =
    let viol =
      match !violations with
      | [] -> ""
      | vs ->
          ";viol:"
          ^ String.concat "+"
              (List.sort_uniq compare (List.map (fun v -> v.oracle) vs))
    in
    Fmt.str "dyn=%s;static=%s;crash=%s%s"
      (bucket (List.length dynamic))
      (bucket (List.length static_))
      crash_component viol
  in
  {
    edges;
    verdict;
    violations = List.rev !violations;
    memo_hits = Crashsim.Memo.hits memo;
    memo_misses = Crashsim.Memo.misses memo;
  }

let evaluate ?exec prog =
  try evaluate_exn ?exec prog
  with e ->
    {
      edges = [];
      verdict = "exception";
      violations =
        [
          {
            oracle = "pipeline_exception";
            detail = Printexc.to_string e;
          };
        ];
      memo_hits = 0;
      memo_misses = 0;
    }

let fails ?exec ~oracle prog =
  List.exists (fun v -> v.oracle = oracle) (evaluate ?exec prog).violations
