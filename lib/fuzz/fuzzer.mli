(** The coverage-guided fuzzing loop.

    Rounds of a fixed candidate count: each round builds its candidates
    serially (generation for the seed round, corpus mutation afterwards
    — every candidate's RNG is {!Hippo_parallel.Stream.state}[ ~seed
    [namespace; round; slot]]), evaluates them across the PR 3 domain
    pool, then merges outcomes into the corpus serially in slot order.
    Because candidate construction, RNG streams and merging are all
    independent of scheduling, a run is byte-identical at any [--jobs]
    width for a given [--seed] (exec-bounded runs; a wall-clock budget
    necessarily makes the round count timing-dependent).

    After the guided loop an equal number of coverage-blind generated
    programs is executed (namespace 1) as the baseline the summary
    compares cumulative coverage against, and every oracle violation is
    shrunk ({!Shrink}) to a 1-minimal reproducer. *)

open Hippo_pmir

type config = {
  seed : int;
  jobs : int;
  max_execs : int;  (** guided executions; the blind baseline adds as many *)
  max_time : float;  (** wall-clock budget in seconds; [0.] = unlimited *)
  corpus_dir : string option;  (** save corpus + reproducers here *)
  smoke : bool;  (** CI mode: small fixed budget, fully deterministic *)
  exec : Hippo_pmcheck.Exec.tier;
      (** execution tier for candidate runs; results are tier-independent
          (the differential battery proves bit-identical observables), so
          this only changes throughput *)
}

val default_config : config

type found = {
  f_oracle : string;
  f_detail : string;
  f_original : Program.t;
  f_shrunk : Program.t;
}

type summary = {
  execs : int;
  gen_count : int;  (** candidates that came straight from the generator *)
  mutant_count : int;  (** candidates produced by {!Mutate} *)
  corpus_size : int;
  corpus_digest : string;
  edges : int;  (** cumulative guided coverage *)
  blind_edges : int;  (** cumulative coverage of the blind baseline *)
  memo_hits : int;  (** recovery-memo hits across all crash sweeps *)
  memo_misses : int;
  found : found list;
}

val run : config -> summary

(** Deliberately free of wall-clock fields and of the [jobs] width: the
    printed summary is part of the determinism contract. *)
val pp_summary : Format.formatter -> summary -> unit
