(** The fuzzer's corpus: retained candidates plus cumulative coverage.

    Retention policy: a candidate enters the corpus when it is not a
    duplicate (by {!Hippo_pmcheck.Crashsim.program_sig} digest — the same
    digest the recovery memo keys on) and it either marks a coverage-map
    edge no earlier candidate marked or exhibits an oracle verdict string
    never seen before. Consideration happens serially, in submission
    order, which is what keeps the corpus byte-identical at any [--jobs]
    width. *)

open Hippo_pmir

type entry = {
  digest : string;  (** {!Hippo_pmcheck.Crashsim.program_sig} *)
  prog : Program.t;
  verdict : string;
  origin : string;  (** ["gen"] or ["mut:<mutator>"] *)
  hot : (string * string) list;
      (** blocks this entry was observed to execute
          ({!Oracle.hot_blocks}) — the mutators bias CFG edits toward
          them so minted edges actually get marked *)
}

type t

val create : unit -> t

(** [consider t ~origin prog outcome] applies the retention policy.
    Coverage from retained {e and} discarded candidates both accumulate
    into the cumulative map (the guidance signal counts everything
    executed). *)
val consider :
  t -> origin:string -> Program.t -> Oracle.outcome -> [ `Added | `Dup | `Boring ]

val size : t -> int

(** Distinct edges marked by every execution considered so far. *)
val edge_count : t -> int

(** Entries in insertion order. *)
val entries : t -> entry list

(** [pick t rand] draws a uniformly random entry (mutation parent). *)
val pick : t -> Random.State.t -> entry option

(** Hex digest over the sorted entry digests — the run's corpus
    fingerprint (byte-identical across [--jobs] widths). *)
val digest : t -> string

(** Write each entry as [NNN-<digest prefix>.pmir] under [dir]. *)
val save : t -> dir:string -> unit
