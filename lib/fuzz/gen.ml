(* Randomized well-typed PMIR generator.

   Produces programs mixing PM stores, flushes, fences, volatile traffic,
   interprocedural persist helpers and data-dependent branches. The
   central export is [arb_bug_free]: programs where every PM store is
   covered by a store -> flush -> fence chain before any crash point or
   exit, so both the dynamic finder and the static analyzer must report
   zero bugs — the oracle for the static/dynamic differential property
   and a fixed-point input for the repair determinism battery. *)

open Hippo_pmir

let i = Value.imm

(* PM slots live on distinct cache lines so persisting one slot never
   accidentally covers another. *)
let slots = 4
let slot_off k = k * 64

type step =
  | S_persist of int * int  (* store slot <- value; flush; fence *)
  | S_persist_helper of int * int  (* the same chain behind a call *)
  | S_batch of (int * int) list  (* stores, flush each, one fence *)
  | S_vol_store of int * int
  | S_emit of int
  | S_guard of int * int  (* load slot, branch on value, emit 1 or 0 —
                             control flow without durability ops *)
  | S_store_raw of int * int  (* bare PM store: a durability bug unless a
                                 later step happens to persist the slot *)
  | S_flush of int
  | S_fence
  (* checker-mode steps (crash-sweep programs only): each slot has a
     shadow copy and the recovery invariant is slot == shadow *)
  | S_pair of int * int  (* slot and shadow both written and persisted *)
  | S_half of int * int  (* slot persisted, shadow left unflushed: the
                            durable image breaks the invariant *)
  | S_crash  (* explicit crash point *)

let bug_free_cases sv slot =
  let open QCheck.Gen in
  [
    (3, map (fun (s, x) -> S_persist (s, x)) sv);
    (3, map (fun (s, x) -> S_persist_helper (s, x)) sv);
    (2, map (fun ps -> S_batch ps) (list_size (int_range 1 3) sv));
    (2, map (fun (s, x) -> S_vol_store (s, x)) sv);
    (1, map (fun s -> S_emit s) slot);
    (1, map (fun (s, x) -> S_guard (s, x)) sv);
  ]

let gen_with cases : step list QCheck.Gen.t =
  let open QCheck.Gen in
  list_size (int_range 1 20) (frequency cases)

let gen_steps : step list QCheck.Gen.t =
  let slot = QCheck.Gen.int_range 0 (slots - 1) in
  let value = QCheck.Gen.int_range 1 999 in
  let sv = QCheck.Gen.pair slot value in
  gen_with (bug_free_cases sv slot)

(* the full alphabet: bare stores, stray flushes and fences — programs
   that may or may not harbor durability bugs *)
let gen_mixed_steps : step list QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_range 0 (slots - 1) in
  let value = int_range 1 999 in
  let sv = QCheck.Gen.pair slot value in
  gen_with
    (bug_free_cases sv slot
    @ [
        (4, map (fun (s, x) -> S_store_raw (s, x)) sv);
        (2, map (fun s -> S_flush s) slot);
        (2, return S_fence);
      ])

(* Shadow slots (checker mode) live on their own cache lines above the
   primary slots. *)
let shadow_off k = (slots + k) * 64

let checker_name = "check_inv"

let program_of_steps ?(checker = false) steps : Program.t =
  let b = Builder.create () in
  let open Builder in
  (* interprocedural persist chain: store + flush + fence behind a call,
     so the static analyzer must summarize the callee to agree with the
     dynamic finder *)
  let _ =
    func b "persist_to" [ "p"; "x" ] ~body:(fun fb ->
        store fb ~addr:(Value.reg "p") (Value.reg "x");
        flush fb (Value.reg "p");
        fence fb ();
        ret_void fb)
  in
  let _ =
    func b "main" [] ~body:(fun fb ->
        let pm =
          call fb "pm_alloc" [ i ((if checker then 2 * slots else slots) * 64) ]
        in
        let vol = call fb "malloc" [ i (slots * 8) ] in
        let pm_slot k = gep fb pm (i (slot_off k)) in
        let shadow_slot k = gep fb pm (i (shadow_off k)) in
        let vol_slot k = gep fb vol (i (k * 8)) in
        List.iter
          (function
            | S_persist (s, x) ->
                let p = pm_slot s in
                store fb ~addr:p (i x);
                flush fb p;
                fence fb ()
            | S_persist_helper (s, x) ->
                call_void fb "persist_to" [ pm_slot s; i x ]
            | S_batch ps ->
                (* several stores then their flushes, ordered by one
                   fence: still fully persisted *)
                List.iter (fun (s, x) -> store fb ~addr:(pm_slot s) (i x)) ps;
                List.iter (fun (s, _) -> flush fb (pm_slot s)) ps;
                fence fb ()
            | S_vol_store (s, x) -> store fb ~addr:(vol_slot s) (i x)
            | S_emit s -> call_void fb "emit" [ load fb (pm_slot s) ]
            | S_guard (s, x) ->
                let v = load fb (pm_slot s) in
                if_ fb
                  (eq fb v (i x))
                  ~then_:(fun () -> call_void fb "emit" [ i 1 ])
                  ~else_:(fun () -> call_void fb "emit" [ i 0 ])
                  ()
            | S_store_raw (s, x) -> store fb ~addr:(pm_slot s) (i x)
            | S_flush s -> flush fb (pm_slot s)
            | S_fence -> fence fb ()
            | S_pair (s, x) ->
                let p = pm_slot s and sh = shadow_slot s in
                store fb ~addr:p (i x);
                store fb ~addr:sh (i x);
                flush fb p;
                flush fb sh;
                fence fb ()
            | S_half (s, x) ->
                let p = pm_slot s and sh = shadow_slot s in
                store fb ~addr:p (i x);
                flush fb p;
                fence fb ();
                store fb ~addr:sh (i x)
            | S_crash -> crash fb)
          steps;
        ret_void fb)
  in
  (if checker then
     (* post-restart invariant: every slot equals its shadow; the lucky
        image always satisfies it after S_pair/S_half (both write the
        pair), the durable image loses S_half's shadow *)
     let _ =
       func b checker_name [] ~body:(fun fb ->
           let base = call fb "pm_base" [] in
           let acc = ref (i 1) in
           for k = 0 to slots - 1 do
             let a = load fb (gep fb base (i (slot_off k))) in
             let s = load fb (gep fb base (i (shadow_off k))) in
             acc := band fb !acc (eq fb a s)
           done;
           ret fb !acc)
     in
     ());
  let p = Builder.program b in
  Validate.check_exn p;
  p

(** Bug-free programs: every PM store persisted before exit. *)
let arb_bug_free =
  QCheck.make
    QCheck.Gen.(map program_of_steps gen_steps)
    ~print:Printer.to_string

(** Programs over the full alphabet, buggy or not — repair-pipeline
    inputs for the determinism battery. *)
let arb_mixed =
  QCheck.make
    QCheck.Gen.(map program_of_steps gen_mixed_steps)
    ~print:Printer.to_string

(* Crash-sweep programs: slot/shadow pairs, frequent crash points, and a
   small value range so durable images repeat — exercising both the
   LOST/recovers split and the dedup/memo path of the single-pass sweep. *)
let gen_crash_steps : step list QCheck.Gen.t =
  let open QCheck.Gen in
  let slot = int_range 0 (slots - 1) in
  let value = int_range 1 4 in
  let sv = pair slot value in
  list_size (int_range 1 15)
    (frequency
       [
         (3, map (fun (s, x) -> S_pair (s, x)) sv);
         (3, map (fun (s, x) -> S_half (s, x)) sv);
         (3, return S_crash);
         (1, map (fun (s, x) -> S_vol_store (s, x)) sv);
         (1, map (fun s -> S_emit s) slot);
         (1, map (fun (s, x) -> S_guard (s, x)) sv);
       ])

(** Crash-sweep subjects: programs with explicit crash points and an
    in-program recovery checker ({!checker_name}) whose invariant the
    durable image can break while the working image satisfies it. *)
let arb_crash =
  QCheck.make
    QCheck.Gen.(map (program_of_steps ~checker:true) gen_crash_steps)
    ~print:Printer.to_string

let random_mixed rand =
  program_of_steps (QCheck.Gen.generate1 ~rand gen_mixed_steps)

let random_crash rand =
  program_of_steps ~checker:true (QCheck.Gen.generate1 ~rand gen_crash_steps)

let has_checker p = Program.mem p checker_name
let workload t = ignore (Hippo_pmcheck.Exec.call t "main" [])
let setup = [ ("main", []) ]
