(** Greedy delta-debugging shrinker for failing fuzz candidates.

    Repeatedly tries structural deletions — whole functions, whole
    blocks, single instructions, in that order (big cuts first) — and
    keeps any candidate that still validates and still fails the given
    predicate. Runs to a fixpoint: the result is 1-minimal with respect
    to these deletions (no single remaining deletion preserves the
    failure). Since every step removes code, the shrunk program's
    instruction count is never larger than the original's. *)

open Hippo_pmir

(** [shrink ~fails p] minimizes [p] while [fails] holds. [fails] is
    typically {!Oracle.fails}[ ~oracle] for the violated oracle; it is
    re-run on every accepted candidate, so the final program provably
    still fails. Assumes [fails p] is true on entry (returns [p]
    unchanged otherwise). *)
val shrink : fails:(Program.t -> bool) -> Program.t -> Program.t
