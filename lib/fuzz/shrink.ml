open Hippo_pmir

(* Rebuild a program from a function list, preserving globals. *)
let rebuild template funcs =
  List.fold_left
    (fun acc (name, size) -> Program.add_global acc ~name ~size)
    (Program.of_funcs funcs) (Program.globals template)

(* Candidate deletions, big cuts first. Invalid candidates (a removed
   function still called, a removed block still branched to, a removed
   terminator) are filtered by Validate before the predicate runs. *)
let candidates p =
  let funcs = Program.funcs p in
  let drop_funcs =
    List.filter_map
      (fun f ->
        if Func.name f = "main" then None
        else
          Some
            (rebuild p (List.filter (fun g -> Func.name g <> Func.name f) funcs)))
      funcs
  in
  let drop_blocks =
    List.concat_map
      (fun f ->
        match Func.blocks f with
        | [] | [ _ ] -> []
        | _ :: rest ->
            List.map
              (fun (b : Func.block) ->
                let blocks =
                  List.filter
                    (fun (b' : Func.block) -> b'.label <> b.label)
                    (Func.blocks f)
                in
                Program.update p
                  (Func.make ~name:(Func.name f) ~params:(Func.params f)
                     ~blocks))
              rest)
      funcs
  in
  let drop_instrs =
    List.concat_map
      (fun f ->
        List.concat_map
          (fun (b : Func.block) ->
            List.mapi
              (fun k _ ->
                let f' =
                  Func.map_blocks
                    (fun b' ->
                      if b'.label = b.label then
                        {
                          b' with
                          instrs = List.filteri (fun i _ -> i <> k) b'.instrs;
                        }
                      else b')
                    f
                in
                Program.update p f')
              b.instrs)
          (Func.blocks f))
      funcs
  in
  drop_funcs @ drop_blocks @ drop_instrs

let shrink ~fails p =
  if not (fails p) then p
  else
    let rec go p =
      match
        List.find_opt
          (fun p' -> Validate.is_valid p' && fails p')
          (candidates p)
      with
      | Some p' -> go p'
      | None -> p
    in
    go p
