open Hippo_pmir
open Hippo_pmcheck

type entry = {
  digest : string;
  prog : Program.t;
  verdict : string;
  origin : string;
  hot : (string * string) list;
}

type t = {
  mutable entries_rev : entry list;
  mutable count : int;
  cov : Coverage.t;
  seen_digests : (string, unit) Hashtbl.t;
  seen_verdicts : (string, unit) Hashtbl.t;
}

let create () =
  {
    entries_rev = [];
    count = 0;
    cov = Coverage.create ();
    seen_digests = Hashtbl.create 256;
    seen_verdicts = Hashtbl.create 64;
  }

let consider t ~origin prog (o : Oracle.outcome) =
  let fresh_edges = Coverage.add ~into:t.cov o.Oracle.edges in
  let digest = Crashsim.program_sig prog in
  if Hashtbl.mem t.seen_digests digest then `Dup
  else begin
    Hashtbl.add t.seen_digests digest ();
    let new_verdict = not (Hashtbl.mem t.seen_verdicts o.Oracle.verdict) in
    Hashtbl.replace t.seen_verdicts o.Oracle.verdict ();
    if fresh_edges > 0 || new_verdict then begin
      let hot = Oracle.hot_blocks prog o.Oracle.edges in
      t.entries_rev <-
        { digest; prog; verdict = o.Oracle.verdict; origin; hot }
        :: t.entries_rev;
      t.count <- t.count + 1;
      `Added
    end
    else `Boring
  end

let size t = t.count
let edge_count t = Coverage.count t.cov
let entries t = List.rev t.entries_rev

let pick t rand =
  if t.count = 0 then None
  else Some (List.nth t.entries_rev (Random.State.int rand t.count))

let digest t =
  List.map (fun e -> e.digest) t.entries_rev
  |> List.sort compare |> String.concat "" |> Digest.string |> Digest.to_hex

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun k e ->
      let name =
        Printf.sprintf "%03d-%s.pmir" k
          (String.sub (Digest.to_hex e.digest) 0 12)
      in
      let oc = open_out (Filename.concat dir name) in
      output_string oc (Printer.to_string e.prog);
      close_out oc)
    (entries t)
