open Hippo_pmir

type mutator = {
  mname : string;
  apply :
    hot:(string * string) list ->
    Random.State.t ->
    Program.t ->
    Program.t option;
}

(* Helpers ---------------------------------------------------------------- *)

let pick rand = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rand (List.length l)))

(* Prefer sites on observed-hot blocks: a CFG edit on a block that never
   executes mints edge names the coverage run can never mark. Falls back
   to the full site list when nothing is hot. *)
let pick_biased rand ~hot key = function
  | [] -> None
  | l ->
      let hl =
        if hot = [] then []
        else List.filter (fun x -> List.mem (key x) hot) l
      in
      let l = if hl = [] then l else hl in
      Some (List.nth l (Random.State.int rand (List.length l)))

(* The recovery checker is never mutated: crash-sweep oracles compare its
   verdicts across programs, so the invariant code must stay fixed. *)
let eligible_funcs p =
  List.filter (fun f -> Func.name f <> Gen.checker_name) (Program.funcs p)

(* (function name, block label, index, instruction) of every eligible
   instruction site, in program order. *)
let positions p pred =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun (b : Func.block) ->
          List.filteri (fun _ (_, i) -> pred i) (List.mapi (fun k i -> (k, i)) b.instrs)
          |> List.map (fun (k, i) -> (Func.name f, b.label, k, i)))
        (Func.blocks f))
    (eligible_funcs p)

let edit_block p fname label g =
  let f = Program.find_exn p fname in
  let f' =
    Func.map_blocks
      (fun b -> if b.label = label then { b with instrs = g b.instrs } else b)
      f
  in
  Program.update p f'

let remove_nth k l = List.filteri (fun i _ -> i <> k) l

let replace_nth k f l = List.mapi (fun i x -> if i = k then f x else x) l

let insert_after k x l =
  List.concat (List.mapi (fun i y -> if i = k then [ y; x ] else [ y ]) l)

let splice_nth k xs l =
  List.concat (List.mapi (fun i y -> if i = k then xs else [ y ]) l)

let fresh_name rand taken prefix =
  let rec go () =
    let n = Printf.sprintf "%s%d" prefix (Random.State.int rand 100_000) in
    if List.mem n taken then go () else n
  in
  go ()

let copy_instr ~func (i : Instr.t) =
  Instr.make ~iid:(Iid.fresh ~func) ~loc:(Instr.loc i) (Instr.op i)

(* Durability mutators ---------------------------------------------------- *)

let drop pred rand p =
  match pick rand (positions p pred) with
  | None -> None
  | Some (fname, label, k, _) -> Some (edit_block p fname label (remove_nth k))

let drop_flush ~hot:_ rand p = drop Instr.is_flush rand p
let drop_fence ~hot:_ rand p = drop Instr.is_fence rand p

let dup_persist ~hot:_ rand p =
  let pred i = Instr.is_flush i || Instr.is_fence i in
  match pick rand (positions p pred) with
  | None -> None
  | Some (fname, label, k, i) ->
      Some (edit_block p fname label (insert_after k (copy_instr ~func:fname i)))

(* Swap a flush/fence with a neighbour. Blocked when the neighbour is a
   terminator or defines a register the moved instruction reads: the
   dynamic interpreter would then see a different address value than the
   def-order-blind static analysis assumes, and the two detectors would
   disagree for a reason that is not a durability fact. *)
let reorder_persist ~hot:_ rand p =
  let pred i = Instr.is_flush i || Instr.is_fence i in
  match pick rand (positions p pred) with
  | None -> None
  | Some (fname, label, k, i) ->
      let j = if Random.State.bool rand then k + 1 else k - 1 in
      if j < 0 then None
      else
        let f = Program.find_exn p fname in
        let b = List.find (fun (b : Func.block) -> b.label = label) (Func.blocks f) in
        if j >= List.length b.instrs then None
        else
          let n = List.nth b.instrs j in
          if Instr.is_terminator n then None
          else if List.exists (fun r -> Some r = Instr.def n) (Instr.uses i) then None
          else
            let lo, hi = if j < k then (j, k) else (k, j) in
            Some
              (edit_block p fname label (fun instrs ->
                   List.mapi
                     (fun x ins ->
                       if x = lo then List.nth instrs hi
                       else if x = hi then List.nth instrs lo
                       else ins)
                     instrs))

let swap_flush_kind ~hot:_ rand p =
  match pick rand (positions p Instr.is_flush) with
  | None -> None
  | Some (fname, label, k, _) ->
      Some
        (edit_block p fname label
           (replace_nth k (fun i ->
                match Instr.op i with
                | Instr.Flush { kind; addr } ->
                    let kind =
                      match kind with
                      | Instr.Clwb -> Instr.Clflushopt
                      | Instr.Clflushopt -> Instr.Clflush
                      | Instr.Clflush -> Instr.Clwb
                    in
                    Instr.with_op i (Instr.Flush { kind; addr })
                | _ -> i)))

let swap_fence_kind ~hot:_ rand p =
  match pick rand (positions p Instr.is_fence) with
  | None -> None
  | Some (fname, label, k, _) ->
      Some
        (edit_block p fname label
           (replace_nth k (fun i ->
                match Instr.op i with
                | Instr.Fence { kind } ->
                    let kind =
                      match kind with
                      | Instr.Sfence -> Instr.Mfence
                      | Instr.Mfence -> Instr.Sfence
                    in
                    Instr.with_op i (Instr.Fence { kind })
                | _ -> i)))

(* 8 <-> 4 only, and only for small immediate values: with zero-initialized
   memory and values < 2^32 the written bytes are identical either way, so
   the mutation exercises the detectors' size handling without changing
   any observable value. *)
let swap_store_width ~hot:_ rand p =
  let pred i =
    match Instr.op i with
    | Instr.Store { value = Value.Imm v; size = 4 | 8; _ } ->
        v >= 0 && v < 0x1_0000_0000
    | _ -> false
  in
  match pick rand (positions p pred) with
  | None -> None
  | Some (fname, label, k, _) ->
      Some
        (edit_block p fname label
           (replace_nth k (fun i ->
                match Instr.op i with
                | Instr.Store { addr; value; size; nontemporal } ->
                    let size = if size = 8 then 4 else 8 in
                    Instr.with_op i (Instr.Store { addr; value; size; nontemporal })
                | _ -> i)))

(* Stored values and branch-guard constants only steer emitted output and
   path choice; crash-sweep oracles are phrased as original-vs-repaired
   non-regression, so value changes cannot fake a violation. *)
let perturb_value ~hot:_ rand p =
  let pred i =
    match Instr.op i with
    | Instr.Store { value = Value.Imm _; _ } -> true
    | Instr.Binop { rhs = Value.Imm _; _ } -> true
    | _ -> false
  in
  match pick rand (positions p pred) with
  | None -> None
  | Some (fname, label, k, _) ->
      let v = 1 + Random.State.int rand 999 in
      Some
        (edit_block p fname label
           (replace_nth k (fun i ->
                match Instr.op i with
                | Instr.Store { addr; value = Value.Imm _; size; nontemporal } ->
                    Instr.with_op i
                      (Instr.Store { addr; value = Value.Imm v; size; nontemporal })
                | Instr.Binop { dst; op; lhs; rhs = Value.Imm _ } ->
                    Instr.with_op i (Instr.Binop { dst; op; lhs; rhs = Value.Imm v })
                | _ -> i)))

(* Control mutators ------------------------------------------------------- *)

let block_labels f = List.map (fun (b : Func.block) -> b.label) (Func.blocks f)

(* Split a block at a random point: the prefix jumps to a fresh label
   holding the suffix. Semantics-preserving; the fresh label renames every
   edge out of the suffix, which is new coverage territory. *)
let split_block ~hot rand p =
  let cands =
    List.concat_map
      (fun f ->
        List.filter_map
          (fun (b : Func.block) ->
            if List.length b.instrs >= 2 then Some (Func.name f, b) else None)
          (Func.blocks f))
      (eligible_funcs p)
  in
  match
    pick_biased rand ~hot (fun (fname, (b : Func.block)) -> (fname, b.label)) cands
  with
  | None -> None
  | Some (fname, b) ->
      let n = List.length b.instrs in
      let at = 1 + Random.State.int rand (n - 1) in
      let f = Program.find_exn p fname in
      let label' = fresh_name rand (block_labels f) "fz" in
      let prefix = List.filteri (fun i _ -> i < at) b.instrs in
      let suffix = List.filteri (fun i _ -> i >= at) b.instrs in
      let br =
        Instr.make ~iid:(Iid.fresh ~func:fname) ~loc:Loc.none
          (Instr.Br { target = label' })
      in
      let blocks =
        List.concat_map
          (fun (b' : Func.block) ->
            if b'.label = b.label then
              [
                { b' with instrs = prefix @ [ br ] };
                { Func.label = label'; instrs = suffix };
              ]
            else [ b' ])
          (Func.blocks f)
      in
      Some
        (Program.update p
           (Func.make ~name:fname ~params:(Func.params f) ~blocks))

(* Clone one branch target under a fresh label and retarget that single
   branch reference to the clone: execution is unchanged, but the cloned
   block's instructions all sit under a new (func, block) key. *)
let clone_block ~hot rand p =
  let refs =
    List.concat_map
      (fun f ->
        List.concat_map
          (fun (b : Func.block) ->
            List.concat
              (List.mapi
                 (fun k i ->
                   match Instr.op i with
                   | Instr.Br { target } -> [ (Func.name f, b.label, k, `Br, target) ]
                   | Instr.Condbr { if_true; if_false; _ } ->
                       [
                         (Func.name f, b.label, k, `True, if_true);
                         (Func.name f, b.label, k, `False, if_false);
                       ]
                   | _ -> [])
                 b.instrs))
          (Func.blocks f))
      (eligible_funcs p)
  in
  (* key on the branch target: the target block being hot means some edge
     into it was taken, so retargeting that reference keeps the clone on
     an executed path *)
  match
    pick_biased rand ~hot (fun (fname, _, _, _, target) -> (fname, target)) refs
  with
  | None -> None
  | Some (fname, label, k, arm, target) ->
      let f = Program.find_exn p fname in
      let tb = List.find (fun (b : Func.block) -> b.label = target) (Func.blocks f) in
      let label' = fresh_name rand (block_labels f) "fz" in
      let clone =
        { Func.label = label'; instrs = List.map (copy_instr ~func:fname) tb.instrs }
      in
      let retarget i =
        match (Instr.op i, arm) with
        | Instr.Br _, `Br -> Instr.with_op i (Instr.Br { target = label' })
        | Instr.Condbr { cond; if_false; _ }, `True ->
            Instr.with_op i (Instr.Condbr { cond; if_true = label'; if_false })
        | Instr.Condbr { cond; if_true; _ }, `False ->
            Instr.with_op i (Instr.Condbr { cond; if_true; if_false = label' })
        | _ -> i
      in
      let blocks =
        List.map
          (fun (b : Func.block) ->
            if b.label = label then { b with instrs = replace_nth k retarget b.instrs }
            else b)
          (Func.blocks f)
        @ [ clone ]
      in
      Some
        (Program.update p
           (Func.make ~name:fname ~params:(Func.params f) ~blocks))

(* Outline a contiguous run of store/flush/fence instructions into a fresh
   helper function called in its place — the persist-helper shape the
   static analyzer summarizes, under a name no generated program has. *)
let outline_persist ~hot rand p =
  let runs =
    List.concat_map
      (fun f ->
        List.concat_map
          (fun (b : Func.block) ->
            let acc = ref [] and start = ref (-1) and len = ref 0 in
            List.iteri
              (fun k i ->
                if Instr.is_store i || Instr.is_flush i || Instr.is_fence i then begin
                  if !start < 0 then start := k;
                  incr len
                end
                else begin
                  if !len > 0 then acc := (Func.name f, b.label, !start, !len) :: !acc;
                  start := -1;
                  len := 0
                end)
              b.instrs;
            if !len > 0 then acc := (Func.name f, b.label, !start, !len) :: !acc;
            List.rev !acc)
          (Func.blocks f))
      (eligible_funcs p)
  in
  match
    pick_biased rand ~hot (fun (fname, label, _, _) -> (fname, label)) runs
  with
  | None -> None
  | Some (fname, label, start, len) ->
      let f = Program.find_exn p fname in
      let b = List.find (fun (b : Func.block) -> b.label = label) (Func.blocks f) in
      let run = List.filteri (fun i _ -> i >= start && i < start + len) b.instrs in
      let params =
        List.fold_left
          (fun acc i ->
            List.fold_left
              (fun acc r -> if List.mem r acc then acc else acc @ [ r ])
              acc (Instr.uses i))
          [] run
      in
      let hname = fresh_name rand (Program.func_names p) "fz_out" in
      let body =
        List.map (copy_instr ~func:hname) run
        @ [ Instr.make ~iid:(Iid.fresh ~func:hname) ~loc:Loc.none (Instr.Ret None) ]
      in
      let helper =
        Func.make ~name:hname ~params
          ~blocks:[ { Func.label = "entry"; instrs = body } ]
      in
      let call =
        Instr.make ~iid:(Iid.fresh ~func:fname) ~loc:Loc.none
          (Instr.Call
             { dst = None; callee = hname; args = List.map Value.reg params })
      in
      let p =
        edit_block p fname label (fun instrs ->
            List.concat
              (List.mapi
                 (fun i x ->
                   if i = start then [ call ]
                   else if i > start && i < start + len then []
                   else [ x ])
                 instrs))
      in
      Some (Program.add_func p helper)

(* Inline a call to a straight-line, definition-free helper (the persist
   helpers, or a previously outlined run) back into its caller. *)
let inline_call ~hot:_ rand p =
  let inlinable callee =
    match Program.find p callee with
    | None -> None
    | Some f when Func.name f = Gen.checker_name -> None
    | Some f -> (
        match Func.blocks f with
        | [ b ] ->
            let rec split_body acc = function
              | [ last ] -> (
                  match Instr.op last with
                  | Instr.Ret None -> Some (List.rev acc)
                  | _ -> None)
              | i :: rest ->
                  if Instr.is_store i || Instr.is_flush i || Instr.is_fence i
                  then split_body (i :: acc) rest
                  else None
              | [] -> None
            in
            Option.map
              (fun body -> (Func.params f, body))
              (split_body [] b.instrs)
        | _ -> None)
  in
  let sites =
    positions p (fun i ->
        match Instr.op i with
        | Instr.Call { dst = None; callee; _ } -> inlinable callee <> None
        | _ -> false)
  in
  match pick rand sites with
  | None -> None
  | Some (fname, label, k, i) -> (
      match Instr.op i with
      | Instr.Call { callee; args; _ } ->
          let params, body = Option.get (inlinable callee) in
          let subst = List.combine params args in
          let sv = function
            | Value.Reg r as v -> (
                match List.assoc_opt r subst with Some a -> a | None -> v)
            | v -> v
          in
          let inl =
            List.map
              (fun bi ->
                let op =
                  match Instr.op bi with
                  | Instr.Store { addr; value; size; nontemporal } ->
                      Instr.Store
                        { addr = sv addr; value = sv value; size; nontemporal }
                  | Instr.Flush { kind; addr } ->
                      Instr.Flush { kind; addr = sv addr }
                  | op -> op
                in
                Instr.make ~iid:(Iid.fresh ~func:fname) ~loc:(Instr.loc bi) op)
              body
          in
          Some (edit_block p fname label (splice_nth k inl))
      | _ -> None)

(* ------------------------------------------------------------------------ *)

let all =
  [
    { mname = "drop_flush"; apply = drop_flush };
    { mname = "drop_fence"; apply = drop_fence };
    { mname = "dup_persist"; apply = dup_persist };
    { mname = "reorder_persist"; apply = reorder_persist };
    { mname = "swap_flush_kind"; apply = swap_flush_kind };
    { mname = "swap_fence_kind"; apply = swap_fence_kind };
    { mname = "swap_store_width"; apply = swap_store_width };
    { mname = "perturb_value"; apply = perturb_value };
    { mname = "split_block"; apply = split_block };
    { mname = "clone_block"; apply = clone_block };
    { mname = "outline_persist"; apply = outline_persist };
    { mname = "inline_call"; apply = inline_call };
  ]

(* Selection weights: the CFG-reshaping mutators mint fresh (func, block)
   coverage keys and are the fuzzer's main source of new territory, so
   they get the lion's share; the durability mutators plant and heal the
   bugs the oracles chew on. *)
let weighted =
  List.concat_map
    (fun m ->
      let w =
        match m.mname with
        | "split_block" | "clone_block" -> 4
        | "outline_persist" -> 2
        | _ -> 1
      in
      List.init w (fun _ -> m))
    all

let n_weighted = List.length weighted

let mutate ?(hot = []) rand p =
  let rec attempt tries =
    if tries = 0 then None
    else
      let m = List.nth weighted (Random.State.int rand n_weighted) in
      match m.apply ~hot rand p with
      | Some p' when Validate.is_valid p' -> Some (m.mname, p')
      | _ -> attempt (tries - 1)
  in
  attempt 16

let all_blocks p =
  List.concat_map
    (fun f ->
      List.map (fun (b : Func.block) -> (Func.name f, b.Func.label)) (Func.blocks f))
    (Program.funcs p)

(* AFL-style havoc: stack several mutations on one candidate. Each step
   is validated individually, so the composition stays well-typed; a
   single mutation rarely mints more than a couple of fresh CFG edges,
   while a stack keeps pace with the edge yield of whole-program
   generation. Blocks a step mints are treated as hot for the following
   steps: when the edit landed on an executed path, its offspring are on
   that path too. *)
let mutate_stack ?(hot = []) rand p =
  let depth = 1 + Random.State.int rand 8 in
  let rec go k hot names p =
    if k = 0 then (names, p)
    else
      match mutate ~hot rand p with
      | None -> (names, p)
      | Some (mname, p') ->
          let before = all_blocks p in
          let fresh =
            List.filter (fun bl -> not (List.mem bl before)) (all_blocks p')
          in
          go (k - 1) (fresh @ hot) (mname :: names) p'
  in
  match go depth hot [] p with
  | [], _ -> None
  | names, p' -> Some (String.concat "+" (List.rev names), p')
