(** Differential oracles: what it means for a fuzz candidate to "fail".

    Every candidate is executed once for coverage and dynamic bug
    reports, then cross-checked against independent implementations of
    the same judgement:

    - [static_dynamic] — every dynamic bug site must be covered by a
      static report (the repo-wide soundness property: the static
      analysis may over-approximate, never miss);
    - [repair_roundtrip] — when the detector finds bugs, the repair
      pipeline must fix them all ({e effective}) without changing the
      program's observable behaviour ({e harm-free});
    - [sweep_differential] — the single-pass crash sweep and the O(n²)
      replay sweep must produce identical verdict lists;
    - [crash_harm] — every crash point that was fully consistent before
      the repair (all post-crash images recover) must stay consistent
      after it — "do no harm" in crash-consistency terms. Points that
      were already inconsistent are exempt: a durability repair
      legitimately shifts which images occur and cannot be asked to fix
      a pre-existing atomicity bug.

    The last two only run on crash-family programs (those defining
    {!Gen.checker_name} and passing a crash point). Any exception
    escaping the pipeline is itself reported as a [pipeline_exception]
    violation — the fuzzer treats an engine crash as a found bug, not an
    infrastructure error. *)

open Hippo_pmir

type violation = {
  oracle : string;  (** oracle identifier, e.g. ["static_dynamic"] *)
  detail : string;  (** human-readable transcript for the reproducer *)
}

type outcome = {
  edges : int list;  (** coverage-map indices the execution marked *)
  verdict : string;
      (** small-alphabet behaviour bucket (bug counts, crash consistency)
          — the corpus retains candidates showing a verdict it has not
          seen, even without new coverage *)
  violations : violation list;
  memo_hits : int;  (** recovery-memo hits this candidate's sweeps made *)
  memo_misses : int;
}

(** Interpreter configuration for fuzz executions: small memories (the
    generated programs touch a few hundred bytes; zeroing the default
    16 MiB PM arena per exec would dominate the run). *)
val interp_config : Hippo_pmcheck.Interp.config

(** Run every applicable oracle on one candidate. [?exec] selects the
    execution tier for every run the oracles make (default: the
    {!Hippo_pmcheck.Interp.default_config} tier). *)
val evaluate : ?exec:Hippo_pmcheck.Exec.tier -> Program.t -> outcome

(** Coverage-only execution (the blind-generation baseline): run [main],
    return the marked edges, skip all oracles. *)
val coverage_edges : ?exec:Hippo_pmcheck.Exec.tier -> Program.t -> int list

(** [hot_blocks p edges] recovers the (func, block) pairs observed to
    execute from a marked edge set, by re-hashing every potential edge of
    [p] and testing membership. Collisions can only add blocks — the
    result is a biasing hint for the mutators, not ground truth. *)
val hot_blocks : Program.t -> int list -> (string * string) list

(** [fails ~oracle p] re-evaluates [p] and reports whether the named
    oracle still finds a violation — the shrinker's predicate. *)
val fails : ?exec:Hippo_pmcheck.Exec.tier -> oracle:string -> Program.t -> bool
