(** Structure-aware PMIR mutators.

    Every mutator maps a well-typed program to a well-typed program —
    candidates that fail {!Hippo_pmir.Validate} are rejected before they
    leave this module, so the fuzzer only ever executes valid PMIR. The
    recovery checker function ({!Gen.checker_name}) is never mutated:
    crash-sweep oracles compare recovery verdicts across programs, which
    requires the invariant code itself to stay fixed.

    Durability-facing mutations (drop / duplicate / reorder / retype a
    flush or fence, narrow or widen a store) plant and heal bugs; control
    mutations (split a block, clone a branch target, outline a persist
    run into a helper, inline one back) reshape the CFG under fresh block
    and function names — exactly what the name-keyed coverage map
    ({!Hippo_pmcheck.Coverage}) counts as new territory. Mutators never
    move stores relative to other stores or to crash points, so the
    working (lucky) PM image at every crash point is preserved — the
    property the crash-sweep non-regression oracle leans on. *)

open Hippo_pmir

type mutator = {
  mname : string;
  apply :
    hot:(string * string) list ->
    Random.State.t ->
    Program.t ->
    Program.t option;
      (** [None] when the mutator finds no applicable site. [hot] is the
          set of (func, block) pairs the parent was observed to execute
          ({!Oracle.hot_blocks}); the CFG mutators bias site selection
          toward it so minted edges land on executed paths. *)
}

(** The whole battery, in a fixed order (the fuzzer indexes into it with
    its per-candidate RNG stream). *)
val all : mutator list

(** [mutate ?hot rand p] tries randomly chosen mutators (a bounded number
    of attempts) until one produces a validated mutant; returns the
    mutator name and the mutant. *)
val mutate :
  ?hot:(string * string) list ->
  Random.State.t ->
  Program.t ->
  (string * Program.t) option

(** [mutate_stack ?hot rand p] applies a short random stack of mutations
    (AFL-style havoc, 1–8 deep); each step is validated individually and
    freshly minted blocks become hot for the following steps. Returns the
    ["+"]-joined mutator names and the final mutant. *)
val mutate_stack :
  ?hot:(string * string) list ->
  Random.State.t ->
  Program.t ->
  (string * Program.t) option
