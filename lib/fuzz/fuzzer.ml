open Hippo_pmir
open Hippo_pmcheck
module Pool = Hippo_parallel.Pool
module Stream = Hippo_parallel.Stream

type config = {
  seed : int;
  jobs : int;
  max_execs : int;
  max_time : float;
  corpus_dir : string option;
  smoke : bool;
  exec : Exec.tier;
}

let default_config =
  {
    seed = 0;
    jobs = 1;
    max_execs = 256;
    max_time = 0.;
    corpus_dir = None;
    smoke = false;
    exec = Interp.default_config.Interp.exec;
  }

type found = {
  f_oracle : string;
  f_detail : string;
  f_original : Program.t;
  f_shrunk : Program.t;
}

type summary = {
  execs : int;
  gen_count : int;
  mutant_count : int;
  corpus_size : int;
  corpus_digest : string;
  edges : int;
  blind_edges : int;
  memo_hits : int;
  memo_misses : int;
  found : found list;
}

let round_size = 16

(* RNG stream namespaces: guided candidates vs the blind baseline. *)
let ns_guided = 0
let ns_blind = 1

let generate rand =
  if Random.State.int rand 3 = 0 then Gen.random_crash rand
  else Gen.random_mixed rand

(* Candidate construction is serial and reads only the round-start corpus,
   so it is independent of the pool width. *)
let build_candidate cfg corpus ~round ~slot =
  let rand = Stream.state ~seed:cfg.seed [ ns_guided; round; slot ] in
  let from_gen () = ("gen", generate rand) in
  if round = 0 || Corpus.size corpus = 0 || Random.State.int rand 8 = 0 then
    from_gen ()
  else
    match Corpus.pick corpus rand with
    | None -> from_gen ()
    | Some e -> (
        match Mutate.mutate_stack ~hot:e.Corpus.hot rand e.Corpus.prog with
        | Some (mname, p') -> ("mut:" ^ mname, p')
        | None -> from_gen ())

let blind_edge_count cfg pool n =
  let edge_lists =
    Pool.map pool
      (fun i ->
        let rand = Stream.state ~seed:cfg.seed [ ns_blind; i ] in
        Oracle.coverage_edges ~exec:cfg.exec (generate rand))
      (List.init n Fun.id)
  in
  let cov = Coverage.create () in
  List.iter (fun es -> ignore (Coverage.add ~into:cov es)) edge_lists;
  Coverage.count cov

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save_reproducers dir found =
  ensure_dir dir;
  List.iteri
    (fun k f ->
      let base = Printf.sprintf "%02d-%s" k f.f_oracle in
      let write ext text =
        let oc = open_out (Filename.concat dir (base ^ ext)) in
        output_string oc text;
        close_out oc
      in
      write ".pmir" (Printer.to_string f.f_shrunk);
      write ".txt"
        (Printf.sprintf
           "oracle: %s\n\n%s\noriginal: %d instrs, shrunk: %d instrs\n"
           f.f_oracle f.f_detail
           (Program.size f.f_original)
           (Program.size f.f_shrunk)))
    found

let run cfg =
  let corpus = Corpus.create () in
  let deadline =
    if cfg.max_time > 0. then Some (Unix.gettimeofday () +. cfg.max_time)
    else None
  in
  let execs = ref 0
  and gen_count = ref 0
  and mutant_count = ref 0
  and memo_hits = ref 0
  and memo_misses = ref 0
  and violations = ref [] in
  Pool.run ~domains:cfg.jobs (fun pool ->
      let round = ref 0 in
      let continue_ () =
        !execs < cfg.max_execs
        && match deadline with
           | Some d -> Unix.gettimeofday () < d
           | None -> true
      in
      while continue_ () do
        let n = min round_size (cfg.max_execs - !execs) in
        let candidates =
          List.init n (fun slot ->
              build_candidate cfg corpus ~round:!round ~slot)
        in
        let results =
          Pool.map pool
            (fun (origin, prog) ->
              (origin, prog, Oracle.evaluate ~exec:cfg.exec prog))
            candidates
        in
        List.iter
          (fun (origin, prog, (o : Oracle.outcome)) ->
            incr execs;
            if origin = "gen" then incr gen_count else incr mutant_count;
            memo_hits := !memo_hits + o.memo_hits;
            memo_misses := !memo_misses + o.memo_misses;
            List.iter
              (fun (v : Oracle.violation) ->
                violations := (v, prog) :: !violations)
              o.violations;
            ignore (Corpus.consider corpus ~origin prog o))
          results;
        incr round
      done;
      (* equal-exec-count coverage-blind baseline *)
      let blind_edges = blind_edge_count cfg pool !execs in
      let found =
        List.rev_map
          (fun ((v : Oracle.violation), prog) ->
            let shrunk =
              Shrink.shrink
                ~fails:(Oracle.fails ~exec:cfg.exec ~oracle:v.oracle)
                prog
            in
            {
              f_oracle = v.oracle;
              f_detail = v.detail;
              f_original = prog;
              f_shrunk = shrunk;
            })
          !violations
      in
      (match cfg.corpus_dir with
      | None -> ()
      | Some dir ->
          ensure_dir dir;
          Corpus.save corpus ~dir:(Filename.concat dir "corpus");
          save_reproducers (Filename.concat dir "reproducers") found);
      {
        execs = !execs;
        gen_count = !gen_count;
        mutant_count = !mutant_count;
        corpus_size = Corpus.size corpus;
        corpus_digest = Corpus.digest corpus;
        edges = Corpus.edge_count corpus;
        blind_edges;
        memo_hits = !memo_hits;
        memo_misses = !memo_misses;
        found;
      })

let pp_summary ppf s =
  Fmt.pf ppf "fuzz summary@.";
  Fmt.pf ppf "  execs:     %d (%d generated, %d mutants)@." s.execs
    s.gen_count s.mutant_count;
  Fmt.pf ppf "  corpus:    %d programs, digest %s@." s.corpus_size
    s.corpus_digest;
  Fmt.pf ppf "  coverage:  %d edges (blind baseline at equal execs: %d)@."
    s.edges s.blind_edges;
  Fmt.pf ppf "  recovery memo: %d hits / %d misses@." s.memo_hits
    s.memo_misses;
  Fmt.pf ppf "  violations: %d@." (List.length s.found);
  List.iter
    (fun f ->
      Fmt.pf ppf "    %s: shrunk %d -> %d instrs@." f.f_oracle
        (Program.size f.f_original)
        (Program.size f.f_shrunk))
    s.found
