(** Domain-parallel corpus sweeps: one repair (or any per-case
    computation) per pool task, with analysis-cache sharing that stays
    safe under parallelism.

    The PR 2 analysis {!Hippo_engine.Cache.t} is single-domain mutable
    state; sharing one instance across worker domains would race. The
    sweep therefore gives every worker domain its {e own} cache
    (domain-local storage, created on first use) and, after all tasks
    settle, folds the per-domain counters into one aggregate cache —
    read-only merging, for reporting only ({!Hippo_engine.Cache.merge_stats}).

    Determinism: case programs are forced {e serially} before fan-out (so
    instruction-identity allocation does not depend on scheduling), tasks
    are pure per-case computations, and results come back in submission
    order — a sweep at any [~jobs] prints byte-identically to [~jobs:1]. *)

open Hippo_pmdk_mini
open Hippo_core

(** [sweep ?jobs ~f cases] runs [f ~cache case] for every case across a
    [jobs]-wide domain pool (default 1 — fully serial, no domains
    spawned). [cache] is the calling domain's private analysis cache:
    tasks that land on the same domain share it. Returns the per-case
    results in corpus order plus the aggregate cache (merged counters of
    every per-domain cache). *)
val sweep :
  ?jobs:int ->
  f:(cache:Hippo_engine.Cache.t -> Case.t -> 'a) ->
  Case.t list ->
  'a list * Hippo_engine.Cache.t

(** [corpus ?options ?jobs cases] repairs every case (the standard
    end-to-end sweep: each task runs the full locate→…→verify pipeline on
    its case's own program and workload). *)
val corpus :
  ?options:Driver.options ->
  ?jobs:int ->
  Case.t list ->
  (Case.t * Driver.result) list * Hippo_engine.Cache.t
