(** Domain-parallel corpus sweeps: one repair (or any per-case
    computation) per pool task, with analysis-cache sharing that stays
    safe under parallelism.

    The PR 2 analysis {!Hippo_engine.Cache.t} is single-domain mutable
    state; sharing one instance across worker domains would race. The
    sweep therefore gives every worker domain its {e own} cache
    (domain-local storage, created on first use) and, after all tasks
    settle, folds the per-domain counters into one aggregate cache —
    read-only merging, for reporting only ({!Hippo_engine.Cache.merge_stats}).

    Determinism: case programs are forced {e serially} before fan-out (so
    instruction-identity allocation does not depend on scheduling), tasks
    are pure per-case computations, and results come back in submission
    order — a sweep at any [~jobs] prints byte-identically to [~jobs:1]. *)

open Hippo_pmdk_mini
open Hippo_core

(** [sweep ?jobs ~f cases] runs [f ~cache case] for every case across a
    [jobs]-wide domain pool (default 1 — fully serial, no domains
    spawned). [cache] is the calling domain's private analysis cache:
    tasks that land on the same domain share it. Returns the per-case
    results in corpus order plus the aggregate cache (merged counters of
    every per-domain cache). *)
val sweep :
  ?jobs:int ->
  f:(cache:Hippo_engine.Cache.t -> Case.t -> 'a) ->
  Case.t list ->
  'a list * Hippo_engine.Cache.t

(** [corpus ?options ?jobs cases] repairs every case (the standard
    end-to-end sweep: each task runs the full locate→…→verify pipeline on
    its case's own program and workload). *)
val corpus :
  ?options:Driver.options ->
  ?jobs:int ->
  Case.t list ->
  (Case.t * Driver.result) list * Hippo_engine.Cache.t

(** One crash-sweep subject: a program plus the workload and recovery
    checker that define its crash scenarios. *)
type crash_subject = {
  cs_id : string;
  cs_program : Hippo_pmir.Program.t Lazy.t;
  cs_setup : (string * int list) list;
  cs_checker : string;
  cs_checker_args : int list;
}

(** [crash_corpus ?jobs subjects] crash-sweeps every subject across a
    domain pool, one subject per task, mirroring {!sweep}'s cache story
    with {!Hippo_pmcheck.Crashsim.Memo} tables: every worker domain
    memoizes recovery verdicts into its own table (created on first use),
    and the per-domain counters are folded into the returned aggregate —
    read-only, reporting only. Verdict lists never depend on memo
    contents, so results are byte-identical at any [jobs]. *)
val crash_corpus :
  ?config:Hippo_pmcheck.Interp.config ->
  ?jobs:int ->
  ?strategy:Hippo_pmcheck.Crashsim.strategy ->
  crash_subject list ->
  (crash_subject
  * Hippo_pmcheck.Crashsim.verdict list
  * Hippo_pmcheck.Crashsim.stats)
  list
  * Hippo_pmcheck.Crashsim.Memo.t
