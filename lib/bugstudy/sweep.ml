(* Domain-parallel corpus sweeps. See the interface for the cache and
   determinism story. *)

open Hippo_pmdk_mini
open Hippo_core
module Cache = Hippo_engine.Cache
module Pool = Hippo_parallel.Pool

(* Case programs are lazy; Lazy.force is not safe to race from several
   domains (a concurrent force can observe Lazy.Undefined). Forcing
   serially before fan-out also keeps instruction-identity allocation
   independent of task scheduling. *)
let force_programs cases =
  List.iter (fun (c : Case.t) -> ignore (Lazy.force c.Case.program)) cases

let sweep ?(jobs = 1) ~f cases =
  force_programs cases;
  if jobs <= 1 then (
    let cache = Cache.create () in
    let results = List.map (fun c -> f ~cache c) cases in
    (results, cache))
  else (
    (* Every worker domain memoizes into its own cache, created lazily on
       the domain's first task and recorded under a mutex so the caches
       can be folded together afterwards. *)
    let registry = ref [] in
    let registry_mutex = Mutex.create () in
    let per_domain =
      Domain.DLS.new_key (fun () ->
          let cache = Cache.create () in
          Mutex.lock registry_mutex;
          registry := cache :: !registry;
          Mutex.unlock registry_mutex;
          cache)
    in
    let results =
      Pool.run ~domains:jobs (fun pool ->
          Pool.map pool (fun c -> f ~cache:(Domain.DLS.get per_domain) c) cases)
    in
    let aggregate = Cache.create () in
    List.iter (fun c -> Cache.merge_stats ~into:aggregate c) (List.rev !registry);
    (results, aggregate))

let corpus ?options ?jobs cases =
  sweep ?jobs
    ~f:(fun ~cache (case : Case.t) ->
      let result =
        Driver.repair ?options ~cache ~name:case.Case.id
          ~workload:case.Case.workload
          (Lazy.force case.Case.program)
      in
      (case, result))
    cases
