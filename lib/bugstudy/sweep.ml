(* Domain-parallel corpus sweeps. See the interface for the cache and
   determinism story. *)

open Hippo_pmdk_mini
open Hippo_core
module Cache = Hippo_engine.Cache
module Pool = Hippo_parallel.Pool

(* Case programs are lazy; Lazy.force is not safe to race from several
   domains (a concurrent force can observe Lazy.Undefined). Forcing
   serially before fan-out also keeps instruction-identity allocation
   independent of task scheduling. *)
let force_programs cases =
  List.iter (fun (c : Case.t) -> ignore (Lazy.force c.Case.program)) cases

let sweep ?(jobs = 1) ~f cases =
  force_programs cases;
  if jobs <= 1 then (
    let cache = Cache.create () in
    let results = List.map (fun c -> f ~cache c) cases in
    (results, cache))
  else (
    (* Every worker domain memoizes into its own cache, created lazily on
       the domain's first task and recorded under a mutex so the caches
       can be folded together afterwards. *)
    let registry = ref [] in
    let registry_mutex = Mutex.create () in
    let per_domain =
      Domain.DLS.new_key (fun () ->
          let cache = Cache.create () in
          Mutex.lock registry_mutex;
          registry := cache :: !registry;
          Mutex.unlock registry_mutex;
          cache)
    in
    let results =
      Pool.run ~domains:jobs (fun pool ->
          Pool.map pool (fun c -> f ~cache:(Domain.DLS.get per_domain) c) cases)
    in
    let aggregate = Cache.create () in
    List.iter (fun c -> Cache.merge_stats ~into:aggregate c) (List.rev !registry);
    (results, aggregate))

type crash_subject = {
  cs_id : string;
  cs_program : Hippo_pmir.Program.t Lazy.t;
  cs_setup : (string * int list) list;
  cs_checker : string;
  cs_checker_args : int list;
}

module Crashsim = Hippo_pmcheck.Crashsim

(* Same shape as [sweep], with a per-domain recovery memo in place of the
   analysis cache: subjects that land on one domain and reach identical
   durable images (e.g. the same case before and after a bug-free prefix)
   share recovery verdicts. Each task sweeps serially — the parallelism
   budget is spent across subjects, not within one sweep — and verdict
   lists never depend on the memo, so any [jobs] prints identically. *)
let crash_corpus ?config ?(jobs = 1) ?strategy subjects =
  List.iter (fun s -> ignore (Lazy.force s.cs_program)) subjects;
  let run ~memo s =
    let verdicts, stats =
      Crashsim.sweep_with_stats ?config ?strategy ~memo
        (Lazy.force s.cs_program) ~setup:s.cs_setup ~checker:s.cs_checker
        ~checker_args:s.cs_checker_args
    in
    (s, verdicts, stats)
  in
  if jobs <= 1 then (
    let memo = Crashsim.Memo.create () in
    (List.map (run ~memo) subjects, memo))
  else (
    let registry = ref [] in
    let registry_mutex = Mutex.create () in
    let per_domain =
      Domain.DLS.new_key (fun () ->
          let memo = Crashsim.Memo.create () in
          Mutex.lock registry_mutex;
          registry := memo :: !registry;
          Mutex.unlock registry_mutex;
          memo)
    in
    let results =
      Pool.run ~domains:jobs (fun pool ->
          Pool.map pool
            (fun s -> run ~memo:(Domain.DLS.get per_domain) s)
            subjects)
    in
    let aggregate = Crashsim.Memo.create () in
    List.iter
      (fun m -> Crashsim.Memo.merge_stats ~into:aggregate m)
      (List.rev !registry);
    (results, aggregate))

let corpus ?options ?jobs cases =
  sweep ?jobs
    ~f:(fun ~cache (case : Case.t) ->
      let result =
        Driver.repair ?options ~cache ~name:case.Case.id
          ~workload:case.Case.workload
          (Lazy.force case.Case.program)
      in
      (case, result))
    cases
