.PHONY: all build check test bench bench-static bench-par bench-crash \
	bench-json bench-fuzz bench-serve bench-exec bench-sim bench-opt \
	fuzz-smoke serve-smoke sim-smoke opt-smoke trace-demo clean fmt

all: build

build:
	dune build

# Tier-1 gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

test: check

bench:
	dune exec bench/main.exe -- table_effectiveness

bench-static:
	dune exec bench/main.exe -- table_static

# Corpus-sweep wall-clock scaling over worker domains (jobs 1/2/4),
# with a cross-check that parallel sweeps reproduce the serial plans.
bench-par:
	dune exec bench/main.exe -- table_par

# Single-pass dedup crash sweep vs per-crash-point replay: n, distinct
# images, recovery runs, wall clock, speedup, verdict identity.
bench-crash:
	dune exec bench/main.exe -- table_crash

# Same, with machine-readable results at the repo root (CI artifact).
bench-json:
	dune exec bench/main.exe -- table_crash --json BENCH_pr4.json

# Coverage-guided fuzzing vs blind generation at equal exec counts.
bench-fuzz:
	dune exec bench/main.exe -- table_fuzz --seed 42

# Million-op YCSB traffic against the served redis_mini: manual vs
# Hippocrates-repaired flush-free, simulated throughput + latency
# percentiles, with machine-readable results at the repo root.
bench-serve:
	dune exec bench/main.exe -- table_serve --json BENCH_pr6.json

# Compiled execution tier vs the reference interpreter: YCSB ops/s and
# fuzz-family execs/s per tier, witness agreement, machine-readable
# results at the repo root (CI artifact).
bench-exec:
	dune exec bench/main.exe -- table_exec --json BENCH_pr7.json

# Bounded in-process serve smoke: fixed seed, two domains, exits
# non-zero if the repaired variant disagrees with manual on any
# verdict, the final count or the store digest. Pinned to the compiled
# tier (the default, but CI states it explicitly).
serve-smoke:
	HIPPO_JOBS=2 dune exec bin/hippocrates_cli.exe -- serve --inproc \
	  --exec compiled --smoke --seed 42 --records 2000 --ops 3000 \
	  --workers 4 --jobs 2

# Fault-injecting scenario fleets: scenarios/s per mode with the
# digest-identity cross-check at the benchmark's jobs width vs serial,
# machine-readable results at the repo root (CI artifact).
bench-sim:
	dune exec bench/main.exe -- table_sim --seed 42 --json BENCH_pr8.json

# Deterministic simulation smoke across both execution tiers: standard
# mode on the hand-hardened redis (must be clean, 0 exit) and chaos on
# P-CLHT's buggy manual port (must detect, so the exit code is
# inverted); both fleets run at two domains with reproducers saved
# under sim-smoke/.
sim-smoke:
	HIPPO_JOBS=2 dune exec bin/hippocrates_cli.exe -- sim --app redis \
	  --variant manual --mode standard --exec compiled --smoke --seed 42 \
	  --jobs 2 --out sim-smoke
	HIPPO_JOBS=2 dune exec bin/hippocrates_cli.exe -- sim --app redis \
	  --variant manual --mode standard --exec interp --smoke --seed 42 \
	  --jobs 2 --out sim-smoke
	! HIPPO_JOBS=2 dune exec bin/hippocrates_cli.exe -- sim --app pclht \
	  --variant manual --mode chaos --exec compiled --smoke --seed 42 \
	  --jobs 2 --out sim-smoke

# Flush/fence optimizer gauntlet: per-rule unit semantics, the
# must-not-remove cases, corpus + both apps (redis and pclht), and the
# do-no-harm checks — static reports identical, P-CLHT crash-sweep
# verdicts identical at jobs 1 and 2. Fails on any verdict drift.
opt-smoke:
	dune exec test/main.exe -- test optimize

# Optimizer savings table over every repaired corpus and app subject:
# static flush/fence sites removed, report identity, perfmodel cost
# deltas, crash-verdict gauntlet; machine-readable results at the repo
# root (CI artifact).
bench-opt:
	dune exec bench/main.exe -- table_opt --json BENCH_pr9.json

# Deterministic 60-second-class fuzz smoke: fixed seed and exec budget,
# exits non-zero on any oracle violation, saves corpus + shrunk
# reproducers under fuzz-smoke/.
fuzz-smoke:
	dune exec bin/hippocrates_cli.exe -- fuzz --exec compiled --smoke \
	  --seed 42 --jobs 2 --corpus fuzz-smoke

# One corpus case end to end with engine tracing: JSON-lines events to
# trace-demo.jsonl, per-phase timing breakdown on stderr.
trace-demo:
	dune exec bin/hippocrates_cli.exe -- fix examples/ir/demo.pmir \
	  --entry main --trace-out trace-demo.jsonl -o /dev/null
	@echo "--- trace-demo.jsonl ---"
	@cat trace-demo.jsonl

clean:
	dune clean

fmt:
	dune fmt
