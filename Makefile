.PHONY: all build check test bench bench-static clean fmt

all: build

build:
	dune build

# Tier-1 gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

test: check

bench:
	dune exec bench/main.exe -- table_effectiveness

bench-static:
	dune exec bench/main.exe -- table_static

clean:
	dune clean

fmt:
	dune fmt
